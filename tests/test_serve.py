"""Tests for the reconstruction service (repro.serve) and the solver
registry / reconstruct() facade it is built on.

Covers the PR's acceptance criteria: a coalesced batch is
bitwise-identical to solo runs, tenant fairness under a saturating
tenant, the structured queue-full reject, clean deadline cancellation,
and registry/facade equivalence for every solver.
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.errors import ValidationError
from repro.geometry import ParallelBeamGeometry
from repro.geometry.phantom import shepp_logan
from repro.serve import (
    QueueFullError,
    ServeConfig,
    ServiceRunner,
    parse_job,
    serve_http,
)
from repro.serve.jobs import CANCELLED, DONE, FAILED, encode_array

SIZE = 32


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry.for_image(SIZE)


@pytest.fixture(scope="module")
def op(geom):
    return repro.operator(geom)


@pytest.fixture(scope="module")
def sinos(op, geom):
    truth = shepp_logan(SIZE).ravel().astype(op.dtype)
    base = op.forward(truth)
    rng = np.random.default_rng(7)
    return [
        (base + rng.normal(0.0, 0.02 * base.std(), base.shape)
         .astype(base.dtype))
        for _ in range(4)
    ]


def payload(sino, *, tenant="default", solver="sirt", params=None, **extra):
    body = {
        "tenant": tenant,
        "solver": solver,
        "params": params if params is not None else {"iterations": 4},
        "geometry": {"size": SIZE},
        "sinogram": encode_array(sino),
    }
    body.update(extra)
    return body


def http_json(url, data=None, expect_error=False):
    req = urllib.request.Request(
        url,
        data=json.dumps(data).encode() if data is not None else None,
        headers={"Content-Type": "application/json"} if data is not None else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as exc:
        if not expect_error:
            raise
        return exc.code, json.loads(exc.read())


# --------------------------------------------------------------------- #
# job parsing / batch keys


class TestParseJob:
    def test_batch_key_ignores_default_spelling(self, sinos):
        explicit = parse_job(payload(
            sinos[0], params={"iterations": 4, "relax": 1.0, "nonneg": True,
                              "rtol": 0.0}))
        implicit = parse_job(payload(sinos[1], params={"iterations": 4}))
        assert explicit.batch_key == implicit.batch_key
        assert explicit.operator_key == implicit.operator_key

    def test_batch_key_differs_on_params_and_solver(self, sinos):
        a = parse_job(payload(sinos[0], params={"iterations": 4}))
        b = parse_job(payload(sinos[0], params={"iterations": 5}))
        c = parse_job(payload(sinos[0], solver="cgls", params={}))
        assert len({a.batch_key, b.batch_key, c.batch_key}) == 3

    def test_coalescible_flags(self, sinos):
        assert parse_job(payload(sinos[0])).coalescible
        rtol = parse_job(payload(sinos[0], params={"rtol": 1e-6}))
        assert not rtol.coalescible and "rtol" in rtol.no_batch_reason
        art = parse_job(payload(sinos[0], solver="art", params={}))
        assert not art.coalescible

    def test_unknown_solver_param_names_solver(self, sinos):
        with pytest.raises(ValidationError, match="solver 'sirt'.*bogus"):
            parse_job(payload(sinos[0], params={"bogus": 1}))

    def test_unknown_top_level_field(self, sinos):
        with pytest.raises(ValidationError, match="unknown job field"):
            parse_job(payload(sinos[0], volume=3))

    def test_sinogram_length_checked(self):
        with pytest.raises(ValidationError, match="expects"):
            parse_job(payload(np.zeros(7, dtype=np.float32)))

    def test_sinogram_b64_roundtrip_exact(self, sinos):
        req = parse_job(payload(sinos[0]))
        assert np.array_equal(req.sinogram, sinos[0])

    def test_sinogram_list_accepted(self, geom):
        flat = [0.5] * geom.num_rays
        req = parse_job({"geometry": {"size": SIZE}, "sinogram": flat})
        assert req.sinogram.shape == (geom.num_rays,)

    def test_non_finite_sinogram_rejected(self, sinos):
        bad = sinos[0].copy()
        bad[0] = np.nan
        with pytest.raises(ValidationError, match="non-finite"):
            parse_job(payload(bad))

    def test_deadline_validated(self, sinos):
        with pytest.raises(ValidationError, match="deadline_s"):
            parse_job(payload(sinos[0], deadline_s=-1))


# --------------------------------------------------------------------- #
# coalescing


class TestCoalescing:
    def test_coalesced_batch_bitwise_identical_to_solo(self, op, sinos):
        """k jobs sharing a batch key run as one SpMM batch whose columns
        match the solo facade runs bit for bit."""
        config = ServeConfig(workers=1, max_batch=8, batch_window_s=0.25)
        with ServiceRunner(config) as runner:
            # occupy the single worker so the real jobs queue up together
            plug = runner.submit(payload(
                sinos[0], tenant="plug", params={"iterations": 60}))
            jobs = [
                runner.submit(payload(s, tenant=f"t{i}",
                                      params={"iterations": 5}))
                for i, s in enumerate(sinos[:3])
            ]
            for job in jobs:
                assert runner.wait(job.id, timeout=120).state == DONE
            runner.wait(plug.id, timeout=120)

        widths = {j.batch_width for j in jobs}
        assert widths == {3}, f"expected one batch of 3, widths={widths}"
        assert all(j.coalesced for j in jobs)
        assert len({j.batch_id for j in jobs}) == 1
        for job, sino in zip(jobs, sinos[:3]):
            solo = repro.reconstruct(op, sino, solver="sirt", iterations=5)
            assert np.array_equal(job.result, solo.image)

    def test_incompatible_params_do_not_coalesce(self, sinos):
        config = ServeConfig(workers=1, max_batch=8, batch_window_s=0.25)
        with ServiceRunner(config) as runner:
            plug = runner.submit(payload(
                sinos[0], tenant="plug", params={"iterations": 40}))
            a = runner.submit(payload(sinos[0], params={"iterations": 3}))
            b = runner.submit(payload(sinos[1], params={"iterations": 4}))
            for job in (plug, a, b):
                runner.wait(job.id, timeout=120)
        assert a.batch_width == 1 and b.batch_width == 1
        assert not a.coalesced and not b.coalesced

    def test_progress_streams_iteration_events(self, sinos):
        with ServiceRunner(ServeConfig(workers=1, batch_window_s=0.0)) as runner:
            job = runner.submit(payload(sinos[0], params={"iterations": 6}))
            runner.wait(job.id, timeout=120)
        snap = job.progress_snapshot()
        assert snap["count"] == 6
        ks = [e["k"] for e in snap["events"]]
        assert ks == list(range(6))
        assert all(e["meaning"] == "residual" for e in snap["events"])
        # SIRT on consistent-ish data: the residual stream decreases
        residuals = [e["residual"] for e in snap["events"]]
        assert residuals[-1] < residuals[0]


# --------------------------------------------------------------------- #
# fairness & admission control


class TestFairnessAndAdmission:
    def test_round_robin_interleaves_a_saturating_tenant(self, sinos):
        """Tenant B's two jobs don't wait behind tenant A's six: round-robin
        scheduling finishes B's last job well before A's backlog drains."""
        config = ServeConfig(workers=1, max_batch=1, batch_window_s=0.0,
                             max_queue_depth=32)
        order = []
        with ServiceRunner(config) as runner:
            plug = runner.submit(payload(
                sinos[0], tenant="plug", params={"iterations": 80}))
            a_jobs = [
                runner.submit(payload(sinos[i % len(sinos)], tenant="A",
                                      params={"iterations": 3}))
                for i in range(6)
            ]
            b_jobs = [
                runner.submit(payload(sinos[i], tenant="B",
                                      params={"iterations": 3}))
                for i in range(2)
            ]
            for job in a_jobs + b_jobs + [plug]:
                assert runner.wait(job.id, timeout=120).state == DONE
        finished = sorted(
            a_jobs + b_jobs, key=lambda j: j.finished_at
        )
        tenants = [j.request.tenant for j in finished]
        b_last = max(i for i, t in enumerate(tenants) if t == "B")
        # strict FIFO would put B's jobs at positions 6 and 7
        assert b_last <= 4, f"B starved: completion order {tenants}"

    def test_queue_full_is_structured_and_per_tenant(self, sinos):
        config = ServeConfig(workers=1, max_queue_depth=2)
        runner = ServiceRunner(config).start(run_scheduler=False)
        try:
            runner.submit(payload(sinos[0], tenant="A"))
            runner.submit(payload(sinos[1], tenant="A"))
            with pytest.raises(QueueFullError) as exc_info:
                runner.submit(payload(sinos[2], tenant="A"))
            body = exc_info.value.payload
            assert body["error"] == "queue_full"
            assert body["tenant"] == "A"
            assert body["max_queue_depth"] == 2
            assert body["retryable"] is True
            # a different tenant still gets in
            assert runner.submit(payload(sinos[3], tenant="B")).state == "queued"
        finally:
            runner.stop()

    def test_stop_fails_queued_jobs_retryable(self, sinos):
        # shutdown is a service condition, not a client mistake: queued
        # jobs fail with a structured retryable error, never "cancelled"
        runner = ServiceRunner(ServeConfig(workers=1)).start(run_scheduler=False)
        job = runner.submit(payload(sinos[0]))
        runner.stop()
        assert job.state == FAILED
        assert job.error["error"] == "shutdown"
        assert job.error["retryable"] is True
        assert job.stop_reason == "shutdown"
        assert job.done.is_set()


# --------------------------------------------------------------------- #
# deadlines


class TestDeadlines:
    def test_queued_deadline_cancels_cleanly(self, sinos):
        config = ServeConfig(workers=1, batch_window_s=0.0, max_batch=1)
        with ServiceRunner(config) as runner:
            plug = runner.submit(payload(
                sinos[0], tenant="plug", params={"iterations": 80}))
            doomed = runner.submit(payload(sinos[1], tenant="late",
                                           deadline_s=0.01))
            doomed = runner.wait(doomed.id, timeout=120)
            runner.wait(plug.id, timeout=120)
        assert doomed.state == CANCELLED
        assert doomed.stop_reason == "deadline"
        assert doomed.error["error"] == "deadline_exceeded"
        assert doomed.result is None
        assert plug.state == DONE  # the rest of the traffic is unharmed

    def test_mid_run_deadline_aborts_batch(self, sinos):
        config = ServeConfig(workers=1, batch_window_s=0.0)
        with ServiceRunner(config) as runner:
            job = runner.submit(payload(
                sinos[0], params={"iterations": 5000}, deadline_s=0.2))
            job = runner.wait(job.id, timeout=120)
            assert job.state == CANCELLED
            assert job.error["error"] == "deadline_exceeded"
            # service stays healthy for the next job
            ok = runner.submit(payload(sinos[1], params={"iterations": 3}))
            assert runner.wait(ok.id, timeout=120).state == DONE


# --------------------------------------------------------------------- #
# registry / facade equivalence


class TestFacadeEquivalence:
    def test_sirt_matches_direct_call(self, op, sinos):
        from repro.recon import sirt_reconstruct

        res = repro.reconstruct(op, sinos[0], solver="sirt", iterations=7,
                                relax=1.2)
        direct = sirt_reconstruct(op, sinos[0], iterations=7, relax=1.2)
        assert np.array_equal(res.image, direct)
        assert res.iterations == 7
        assert len(res.residual_history) == 7

    def test_cgls_matches_direct_call(self, op, sinos):
        from repro.recon import cgls_reconstruct

        res = repro.reconstruct(op, sinos[0], solver="cgls", iterations=6,
                                damping=0.05)
        direct = cgls_reconstruct(op, sinos[0], iterations=6, damping=0.05)
        assert np.array_equal(res.image, direct)
        assert res.residual_meaning == "normal_residual"

    def test_art_matches_direct_call(self, op, sinos):
        from repro.recon import art_reconstruct

        res = repro.reconstruct(op, sinos[0], solver="art", iterations=4,
                                relax=0.7)
        direct = art_reconstruct(op, sinos[0], iterations=4, relax=0.7)
        assert np.array_equal(res.image, direct)

    def test_os_sart_matches_direct_call(self, op, geom, sinos):
        from repro.recon.os_sart import os_sart_reconstruct

        res = repro.reconstruct(op, sinos[0], solver="os-sart", geom=geom,
                                iterations=2, num_subsets=4)
        direct = os_sart_reconstruct(op.to_csr(), geom, sinos[0],
                                     iterations=2, num_subsets=4)
        assert np.array_equal(res.image, direct)

    def test_fbp_matches_direct_call(self, op, geom, sinos):
        from repro.recon import fbp_reconstruct

        res = repro.reconstruct(op, sinos[0], solver="fbp", geom=geom)
        direct = fbp_reconstruct(op, sinos[0], geom)
        assert np.array_equal(res.image, direct)
        assert res.stop_reason == "analytic"

    def test_underscore_alias(self, op, geom, sinos):
        res = repro.reconstruct(op, sinos[0], solver="os_sart", geom=geom,
                                iterations=1, num_subsets=2)
        assert res.solver == "os-sart"

    def test_unknown_param_rejected_with_accepted_list(self, op, sinos):
        with pytest.raises(ValidationError, match="accepted parameters"):
            repro.reconstruct(op, sinos[0], solver="cgls", relax=1.0)


# --------------------------------------------------------------------- #
# HTTP API


class TestHTTPAPI:
    @pytest.fixture()
    def served(self):
        runner = ServiceRunner(ServeConfig(workers=2, batch_window_s=0.02))
        runner.start()
        server = serve_http(runner)
        yield f"http://127.0.0.1:{server.port}"
        server.stop()
        runner.stop()

    def test_submit_poll_fetch_roundtrip(self, served, op, sinos):
        status, body = http_json(
            served + "/v1/reconstruct",
            payload(sinos[0], params={"iterations": 5}))
        assert status == 202
        assert body["state"] in ("queued", "running")
        jid = body["job_id"]

        deadline = time.time() + 60
        while time.time() < deadline:
            status, snap = http_json(served + f"/v1/jobs/{jid}")
            if snap["state"] == "done":
                break
            time.sleep(0.02)
        assert snap["state"] == "done"

        import base64

        img = snap["image"]
        got = np.frombuffer(base64.b64decode(img["b64"]), dtype=img["dtype"])
        solo = repro.reconstruct(op, sinos[0], solver="sirt", iterations=5)
        assert np.array_equal(got, solo.image)

        status, prog = http_json(served + f"/v1/jobs/{jid}/progress")
        assert status == 200 and prog["count"] == 5

        status, lean = http_json(served + f"/v1/jobs/{jid}?image=0")
        assert "image" not in lean

    def test_validation_names_solver_over_http(self, served, sinos):
        status, body = http_json(
            served + "/v1/reconstruct",
            payload(sinos[0], solver="cgls", params={"relax": 2}),
            expect_error=True)
        assert status == 400
        assert body["error"] == "validation"
        assert "cgls" in body["message"]
        assert "accepted parameters" in body["message"]

    def test_bad_json_is_400(self, served):
        req = urllib.request.Request(
            served + "/v1/reconstruct", data=b"{nope",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=10)
        assert exc_info.value.code == 400

    def test_unknown_job_is_404(self, served):
        status, body = http_json(served + "/v1/jobs/job-999999",
                                 expect_error=True)
        assert status == 404 and body["error"] == "unknown_job"

    def test_healthz_and_metrics(self, served):
        status, health = http_json(served + "/healthz")
        assert status == 200 and health["status"] == "ok"
        with urllib.request.urlopen(served + "/metrics", timeout=10) as r:
            text = r.read().decode()
        assert "repro_serve_jobs_submitted" in text

    def test_http_queue_full_is_429(self, sinos):
        runner = ServiceRunner(ServeConfig(workers=1, max_queue_depth=1))
        runner.start(run_scheduler=False)
        server = serve_http(runner)
        url = f"http://127.0.0.1:{server.port}"
        try:
            status, _ = http_json(url + "/v1/reconstruct",
                                  payload(sinos[0], tenant="flood"))
            assert status == 202
            status, body = http_json(url + "/v1/reconstruct",
                                     payload(sinos[1], tenant="flood"),
                                     expect_error=True)
            assert status == 429
            assert body["error"] == "queue_full"
            assert body["retryable"] is True
        finally:
            server.stop()
            runner.stop()


# --------------------------------------------------------------------- #
# bench hook


class TestServeBench:
    def test_quick_sweep_runs_and_renders(self):
        from repro.bench.serve import render, run_serve_bench, serve_cases

        records = run_serve_bench(
            size=24, jobs_per_level=4, concurrency_levels=(1, 4),
            iterations=3, quick=False, batch_window_s=0.02,
        )
        assert [r.concurrency for r in records] == [1, 4]
        assert all(r.failed == 0 for r in records)
        assert all(r.jobs == 4 for r in records)
        out = render(records)
        assert "jobs/s" in out
        cases = serve_cases(records, size=24)
        assert {c["case"] for c in cases} == {"serve/sirt/24/c1",
                                              "serve/sirt/24/c4"}
        assert all(c["p99_seconds"] >= c["p50_seconds"] > 0 for c in cases)
