"""Integration tests: every experiment module renders end to end.

These run the table/figure generators at reduced scale and assert the
structural claims their reports encode (not just "returns a string").
"""

import numpy as np
import pytest

from repro import config
from repro.bench.experiments import fig3, fig8, fig9, fig11, table3, table4

needs_compiled_backend = pytest.mark.skipif(
    config.runtime.backend == "numpy",
    reason="compiled-kernel performance claim; NumPy fallback forced",
)


class TestTable3:
    def test_model_scorer_renders_both_rows(self):
        out = table3.run(
            dataset="clinical-small",
            scorer="model",
            s_vvec_grid=(8, 16),
            s_imgb_grid=(8, 16),
            s_vxg_grid=(1, 2),
        )
        assert "ours:host" in out and "paper:skl" in out
        assert out.count("cscv-z") >= 2 and out.count("cscv-m") >= 2


class TestTable4:
    @pytest.mark.slow
    def test_single_precision_full_row_set(self):
        out = table4.run(dataset_names=["clinical-small"], dtype=np.float32,
                         iterations=5)
        for name in table4.SINGLE_FORMATS:
            assert name in out
        assert "85.48" in out  # the paper's CSCV-M column is printed

    @needs_compiled_backend
    def test_speedup_summary_headline(self):
        s = table4.speedup_summary(dataset_name="clinical-small")
        assert s["cscv_best"] > 0
        assert s["vs_mkl_csr"] > 0.5  # CSCV competitive with vendor CSR
        assert s["second_name"] not in ("cscv-z", "cscv-m")


class TestFig3:
    def test_layout_rendering_contains_all_pixels(self):
        out = fig3.run(pixels=((5, 5), (7, 7)))
        assert "pixel (5, 5)" in out and "pixel (7, 7)" in out
        assert "padding" in out


class TestFig8:
    def test_monotone_trends_in_sweep(self):
        points = fig8.sweep(
            dataset="clinical-small",
            s_vvec_grid=(4, 8),
            s_imgb_grid=(8, 16),
            s_vxg_grid=(1, 2),
        )
        assert len(points) == 8
        # R_nnzE monotone in s_vvec at fixed (imgb, vxg)
        by_key = {
            (p.params.s_vvec, p.params.s_imgb, p.params.s_vxg): p.r_nnze
            for p in points
        }
        assert by_key[(8, 8, 1)] >= by_key[(4, 8, 1)]
        assert by_key[(8, 16, 1)] >= by_key[(8, 8, 1)]
        assert by_key[(8, 8, 2)] >= by_key[(8, 8, 1)]
        # CSCV-M memory below CSCV-Z everywhere
        for p in points:
            assert p.memory_m <= p.memory_z

    def test_render(self):
        out = fig8.run(dataset="clinical-small")
        assert "R_nnzE" in out and "memory CSCV-M" in out


class TestFig9:
    def test_annotated_cells(self):
        out = fig9.run(
            dataset="clinical-small",
            s_vvec_grid=(8,),
            s_imgb_grid=(8, 16),
            s_vxg_grid=(1, 2),
            iterations=3,
        )
        assert "CSCV-Z host" in out and "CSCV-M host" in out
        assert "(1)" in out or "(2)" in out  # chosen S_VxG annotation


class TestFig11:
    def test_reasons_reproduced(self):
        out = fig11.run(dataset="clinical-small", iterations=5)
        assert "reason 1" in out and "reason 2" in out
        assert "cscv-m" in out

    def test_cscv_m_lowest_traffic(self):
        from repro.api import build_format
        from repro.bench.datasets import get_dataset
        from repro.core.params import PAPER_TABLE3
        from repro.sparse.stats import memory_requirement

        coo, geom = get_dataset("clinical-small").load(dtype=np.float32)
        params = {"cscv-m": PAPER_TABLE3[("skl", "cscv-m", "single")]}
        mems = {}
        for name in ("cscv-m", "mkl-csr", "csr", "merge"):
            fmt = build_format(name, coo, geom=geom, params=params.get(name))
            mems[name] = memory_requirement(fmt)["M_rit"]
        assert mems["cscv-m"] == min(mems.values())
