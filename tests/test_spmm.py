"""Batched multi-RHS SpMV (SpMM) tests: drivers, formats, solvers, bugfixes.

Covers the whole batched stack — the C and NumPy SpMM paths against
per-column SpMV, threaded-vs-flat-vs-C equality, batched solvers against
their single-sinogram runs — plus the bugfix sweep that rode along:
O(nnz) adjoint fallback (no densification), the shared SpMV thread pool,
CSCV file validation, and the autotune None-guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.api import build_ct_matrix, build_format
from repro.core import spmv as spmv_mod
from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.errors import AutotuneError, FormatError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

BATCHES = (1, 3, 16)


def _tol(dtype):
    return dict(rtol=2e-4, atol=2e-5) if np.dtype(dtype) == np.float32 else dict(
        rtol=1e-10, atol=1e-12
    )


def _per_column(fmt, X):
    return np.column_stack(
        [fmt.spmv(np.ascontiguousarray(X[:, j])) for j in range(X.shape[1])]
    )


# ---------------------------------------------------------------------- #
# SpMM vs per-column SpMV across formats, batches and backends


class TestSpMMEquivalence:
    @pytest.mark.parametrize("name", ["csr", "cscv-z", "cscv-m"])
    @pytest.mark.parametrize("k", BATCHES)
    def test_batched_matches_per_column(self, small_ct_f32, backend, rng, name, k):
        coo, geom = small_ct_f32
        fmt = build_format(name, coo, geom=geom, params=CSCVParams(8, 16, 2))
        X = np.ascontiguousarray(rng.random((fmt.shape[1], k)), dtype=fmt.dtype)
        np.testing.assert_allclose(
            fmt.spmm(X), _per_column(fmt, X), **_tol(fmt.dtype)
        )

    @pytest.mark.parametrize("name", ["csr", "cscv-z", "cscv-m"])
    def test_float64(self, small_ct, backend, rng, name):
        coo, geom = small_ct
        fmt = build_format(name, coo, geom=geom, params=CSCVParams(8, 16, 2))
        X = np.ascontiguousarray(rng.random((fmt.shape[1], 5)))
        np.testing.assert_allclose(
            fmt.spmm(X), _per_column(fmt, X), **_tol(np.float64)
        )

    def test_default_loop_fallback_formats(self, small_ct, rng):
        """Formats without a batched override use the per-column default."""
        coo, geom = small_ct
        for name in ("ell", "csr5", "spc5", "merge"):
            fmt = build_format(name, coo, geom=geom)
            X = np.ascontiguousarray(rng.random((fmt.shape[1], 3)))
            np.testing.assert_allclose(
                fmt.spmm(X), _per_column(fmt, X), **_tol(np.float64)
            )

    def test_matvec_dispatch(self, small_ct, rng):
        coo, geom = small_ct
        csr = build_format("csr", coo, geom=geom)
        x = rng.random(csr.shape[1])
        X = np.ascontiguousarray(rng.random((csr.shape[1], 2)))
        assert csr.matvec(x).ndim == 1
        assert csr.matvec(X).shape == (csr.shape[0], 2)
        np.testing.assert_allclose(csr @ X, csr.spmm(X))

    def test_empty_matrix(self, backend):
        geom = ParallelBeamGeometry.for_image(4)
        e = np.zeros(0)
        for cls in (CSCVZMatrix, CSCVMMatrix):
            fmt = cls.from_coo(
                (geom.num_rays, geom.num_pixels), e.astype(np.int64),
                e.astype(np.int64), e, geom=geom,
            )
            Y = fmt.spmm(np.ones((geom.num_pixels, 3)))
            assert Y.shape == (geom.num_rays, 3)
            assert not Y.any()
        csr = CSRMatrix.from_coo((5, 4), e.astype(np.int64), e.astype(np.int64), e)
        assert not csr.spmm(np.ones((4, 3))).any()

    def test_zero_batch(self, small_ct):
        coo, geom = small_ct
        csr = build_format("csr", coo, geom=geom)
        Y = csr.spmm(np.zeros((csr.shape[1], 0)))
        assert Y.shape == (csr.shape[0], 0)


# ---------------------------------------------------------------------- #
# threaded vs flat vs C driver equality


class TestDriverEquality:
    @pytest.fixture(scope="class", params=[np.float32, np.float64])
    def data(self, request):
        coo, geom = build_ct_matrix(32, dtype=request.param)
        return build_cscv(
            coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 8, 2), request.param
        )

    def _run(self, cls, data, threads, backend_name, x_or_X):
        prev = config.runtime.backend
        config.runtime.backend = backend_name
        try:
            fmt = cls(data, threads=threads)
            return fmt.spmm(x_or_X) if x_or_X.ndim == 2 else fmt.spmv(x_or_X)
        finally:
            config.runtime.backend = prev

    @pytest.mark.parametrize("cls", [CSCVZMatrix, CSCVMMatrix])
    def test_spmv_flat_threaded_c_agree(self, data, cls, rng):
        assert data.num_blocks >= 8  # threaded path actually engages
        x = rng.random(data.shape[1]).astype(data.dtype)
        flat = self._run(cls, data, 1, "numpy", x)
        threaded = self._run(cls, data, 4, "numpy", x)
        np.testing.assert_allclose(threaded, flat, **_tol(data.dtype))
        c = self._run(cls, data, 4, "auto", x)
        np.testing.assert_allclose(c, flat, **_tol(data.dtype))

    @pytest.mark.parametrize("cls", [CSCVZMatrix, CSCVMMatrix])
    @pytest.mark.parametrize("k", BATCHES)
    def test_spmm_flat_threaded_c_agree(self, data, cls, rng, k):
        X = np.ascontiguousarray(rng.random((data.shape[1], k)), dtype=data.dtype)
        flat = self._run(cls, data, 1, "numpy", X)
        threaded = self._run(cls, data, 4, "numpy", X)
        np.testing.assert_allclose(threaded, flat, **_tol(data.dtype))
        c = self._run(cls, data, 4, "auto", X)
        np.testing.assert_allclose(c, flat, **_tol(data.dtype))

    def test_single_block_threads_exceed_blocks(self, rng):
        """threads > num_blocks must fall back to the flat path, correctly."""
        coo, geom = build_ct_matrix(16, dtype=np.float32)
        data = build_cscv(
            coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 16, 2), np.float32
        )
        assert data.num_blocks == 1
        X = np.ascontiguousarray(rng.random((data.shape[1], 3)), dtype=np.float32)
        prev = config.runtime.backend
        config.runtime.backend = "numpy"
        try:
            few = CSCVZMatrix(data, threads=1).spmm(X)
            many = CSCVZMatrix(data, threads=8).spmm(X)
        finally:
            config.runtime.backend = prev
        np.testing.assert_allclose(many, few, **_tol(np.float32))


# ---------------------------------------------------------------------- #
# shared thread pool (bugfix: no executor churn per call)


class TestSharedPool:
    def test_pool_reused_and_grows(self):
        spmv_mod._shutdown_pool()
        p2 = spmv_mod._shared_pool(2)
        assert spmv_mod._shared_pool(2) is p2  # same worker count: reuse
        p4 = spmv_mod._shared_pool(4)
        assert p4 is not p2  # grew
        assert spmv_mod._shared_pool(3) is p4  # smaller request: reuse big pool
        spmv_mod._shutdown_pool()
        assert spmv_mod._pool is None

    def test_threaded_spmv_uses_module_pool(self, rng):
        coo, geom = build_ct_matrix(32, dtype=np.float32)
        data = build_cscv(
            coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 8, 2), np.float32
        )
        x = rng.random(data.shape[1]).astype(np.float32)
        y = np.zeros(data.shape[0], dtype=np.float32)
        prev = config.runtime.backend
        config.runtime.backend = "numpy"
        try:
            spmv_mod._shutdown_pool()
            spmv_mod.spmv_z(data, x, y, threads=4)
            pool = spmv_mod._pool
            assert pool is not None
            spmv_mod.spmv_z(data, x, y, threads=4)
            assert spmv_mod._pool is pool  # no churn across calls
        finally:
            config.runtime.backend = prev


# ---------------------------------------------------------------------- #
# batched operator + solvers


class TestBatchedRecon:
    @pytest.fixture(scope="class")
    def problem(self):
        coo, geom = build_ct_matrix(24, dtype=np.float32)
        return coo, geom

    def test_operator_batched_forward_adjoint(self, problem, rng):
        from repro.recon import ProjectionOperator

        coo, geom = problem
        op = ProjectionOperator(
            build_format("cscv-z", coo, geom=geom, params=CSCVParams(8, 8, 2))
        )
        X = rng.random((op.shape[1], 3)).astype(np.float32)
        Y = op.forward(X)
        assert Y.shape == (op.shape[0], 3)
        np.testing.assert_allclose(
            Y[:, 1], op.forward(np.ascontiguousarray(X[:, 1])), **_tol(np.float32)
        )
        B = op.adjoint(Y)
        assert B.shape == (op.shape[1], 3)
        np.testing.assert_allclose(
            B[:, 2], op.adjoint(np.ascontiguousarray(Y[:, 2])), **_tol(np.float32)
        )

    def test_sirt_stack_matches_columns(self, problem, rng):
        from repro.recon import ProjectionOperator, sirt_reconstruct

        coo, geom = problem
        op = ProjectionOperator(build_format("csr", coo, geom=geom))
        truth = rng.random((op.shape[1], 3)).astype(np.float32)
        sino = op.forward(truth)
        stack = sirt_reconstruct(op, sino, iterations=5)
        assert stack.shape == truth.shape
        for j in range(3):
            single = sirt_reconstruct(
                op, np.ascontiguousarray(sino[:, j]), iterations=5
            )
            np.testing.assert_allclose(stack[:, j], single, rtol=1e-4, atol=1e-5)

    def test_cgls_stack_matches_columns(self, problem, rng):
        from repro.recon import ProjectionOperator, cgls_reconstruct

        coo, geom = problem
        op = ProjectionOperator(build_format("csr", coo, geom=geom))
        truth = rng.random((op.shape[1], 3)).astype(np.float32)
        sino = op.forward(truth)
        stack = cgls_reconstruct(op, sino, iterations=6)
        for j in range(3):
            single = cgls_reconstruct(
                op, np.ascontiguousarray(sino[:, j]), iterations=6
            )
            np.testing.assert_allclose(stack[:, j], single, rtol=1e-3, atol=1e-4)

    def test_os_sart_stack_matches_columns(self, problem, rng):
        from repro.recon.os_sart import os_sart_reconstruct

        coo, geom = problem
        csr = CSRMatrix.from_coo_matrix(coo.astype(np.float32))
        sino = csr.spmm(rng.random((csr.shape[1], 2)).astype(np.float32))
        stack = os_sart_reconstruct(csr, geom, sino, iterations=2, num_subsets=4)
        for j in range(2):
            single = os_sart_reconstruct(
                csr, geom, np.ascontiguousarray(sino[:, j]),
                iterations=2, num_subsets=4,
            )
            np.testing.assert_allclose(stack[:, j], single, rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------- #
# adjoint fallback: O(nnz), never densifies (bugfix regression)


class TestAdjointFallback:
    def test_no_to_dense_on_adjoint_path(self, small_ct_f32, rng):
        from repro.recon.linops import ProjectionOperator

        coo, geom = small_ct_f32
        fmt = build_format("csr5", coo, geom=geom)  # has no transpose_spmv
        assert not hasattr(fmt, "transpose_spmv")
        dense_t = fmt.to_dense().T  # reference, computed before poisoning

        def boom():  # pragma: no cover - must never run
            raise AssertionError("adjoint path densified the matrix")

        fmt.to_dense = boom
        op = ProjectionOperator(fmt)
        y = rng.random(fmt.shape[0]).astype(np.float32)
        np.testing.assert_allclose(
            op.adjoint(y), dense_t @ y, **_tol(np.float32)
        )
        Y = rng.random((fmt.shape[0], 3)).astype(np.float32)
        np.testing.assert_allclose(
            op.adjoint(Y), dense_t @ Y, **_tol(np.float32)
        )

    def test_norm_helpers_use_triplets(self, small_ct, rng):
        from repro.recon.linops import ProjectionOperator

        coo, geom = small_ct
        fmt = build_format("csr", coo, geom=geom)
        dense = fmt.to_dense()
        fmt.to_dense = lambda: (_ for _ in ()).throw(AssertionError("densified"))
        op = ProjectionOperator(fmt)
        np.testing.assert_allclose(
            op.row_norms_sq(), (dense.astype(np.float64) ** 2).sum(axis=1)
        )
        np.testing.assert_allclose(
            op.col_norms_sq(), (dense.astype(np.float64) ** 2).sum(axis=0)
        )

    def test_all_shipped_formats_override_triplets(self, small_ct):
        """The base-class to_dense-backed default must stay unused in-tree."""
        from repro.sparse.matrix_base import SpMVFormat, _REGISTRY

        for cls in _REGISTRY.values():
            assert cls.to_coo_triplets is not SpMVFormat.to_coo_triplets or (
                cls.to_coo_triplets.__qualname__.startswith("_ScipyBacked")
            ), f"{cls.__name__} lacks a direct to_coo_triplets"


# ---------------------------------------------------------------------- #
# CSCV file validation (bugfix)


class TestLoadValidation:
    @pytest.fixture()
    def saved(self, tmp_path, small_ct_f32):
        from repro.core.io import save_cscv

        coo, geom = small_ct_f32
        data = build_cscv(
            coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 16, 2), np.float32
        )
        path = tmp_path / "m.npz"
        save_cscv(path, data)
        return path, data

    def _corrupt(self, path, tmp_path, **edits):
        with np.load(path) as z:
            arrays = {k: z[k] for k in z.files}
        arrays.update(edits)
        out = tmp_path / "corrupt.npz"
        np.savez_compressed(out, **arrays)
        return out

    def test_roundtrip_still_works(self, saved):
        from repro.core.io import load_cscv

        path, data = saved
        loaded = load_cscv(path)
        np.testing.assert_array_equal(loaded.values, data.values)
        assert loaded.nnz == data.nnz

    def test_short_meta_rejected(self, saved, tmp_path):
        from repro.core.io import load_cscv

        path, _ = saved
        bad = self._corrupt(path, tmp_path, _meta=np.array([1, 2, 3], dtype=np.int64))
        with pytest.raises(FormatError, match="_meta"):
            load_cscv(bad)

    def test_truncated_packed_rejected(self, saved, tmp_path):
        from repro.core.io import load_cscv

        path, data = saved
        bad = self._corrupt(path, tmp_path, packed=data.packed[:-3])
        with pytest.raises(FormatError, match="packed"):
            load_cscv(bad)

    def test_truncated_values_rejected(self, saved, tmp_path):
        from repro.core.io import load_cscv

        path, data = saved
        bad = self._corrupt(path, tmp_path, values=data.values[:-1])
        with pytest.raises(FormatError, match="values"):
            load_cscv(bad)

    def test_nonmonotone_block_ptr_rejected(self, saved, tmp_path):
        from repro.core.io import load_cscv

        path, data = saved
        broken = data.blk_vxg_ptr.copy()
        if broken.size > 2:
            broken[1] = broken[-1] + 5  # spike: later entries now decrease
        bad = self._corrupt(path, tmp_path, blk_vxg_ptr=broken)
        with pytest.raises(FormatError, match="blk_vxg_ptr"):
            load_cscv(bad)

    def test_ysize_map_mismatch_rejected(self, saved, tmp_path):
        from repro.core.io import load_cscv

        path, data = saved
        broken = data.blk_ysize.copy()
        broken[0] += 1
        bad = self._corrupt(path, tmp_path, blk_ysize=broken)
        with pytest.raises(FormatError, match="blk_ysize|maps"):
            load_cscv(bad)


# ---------------------------------------------------------------------- #
# autotune: measured scorer must not crash on missing timings (bugfix)


class TestAutotuneGuard:
    def test_measure_without_timings_raises_named_combo(self, small_ct_f32, monkeypatch):
        import repro.core.autotune as at

        coo, geom = small_ct_f32

        def fake_sweep(*a, **kw):
            return [
                at.SweepPoint(
                    params=CSCVParams(8, 16, 2), r_nnze=0.1,
                    memory_z=1.0, memory_m=1.0,
                )
            ]

        monkeypatch.setattr(at, "parameter_sweep", fake_sweep)
        with pytest.raises(AutotuneError, match=r"s_vvec=8.*s_imgb=16.*s_vxg=2"):
            at.autotune_parameters(coo, geom, scorer="measure")


# ---------------------------------------------------------------------- #
# bench plumbing


class TestSpMMBench:
    def test_measure_and_render(self, small_ct_f32):
        from repro.bench.spmm import measure_spmm, render

        coo, geom = small_ct_f32
        fmt = build_format("csr", coo, geom=geom)
        rec = measure_spmm(fmt, 4, iterations=2, max_seconds=0.2)
        assert rec.batch == 4
        assert rec.looped_seconds > 0 and rec.batched_seconds > 0
        text = render([rec], title="t")
        assert "csr" in text and "speedup" in text

    def test_cli_bench_spmm(self, capsys):
        from repro.cli import main

        rc = main([
            "bench", "spmm", "--size", "16", "--batches", "1,4",
            "--formats", "csr", "--iterations", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SpMM vs looped SpMV" in out
