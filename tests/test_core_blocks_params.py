"""Tests for CSCV parameters and the block grid."""

import numpy as np
import pytest

from repro.core.blocks import BlockGrid
from repro.core.params import CSCVParams, PAPER_TABLE3
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry(image_size=25, num_bins=38, num_views=45, delta_angle_deg=4.0)


class TestParams:
    def test_defaults_valid(self):
        p = CSCVParams()
        assert p.vxg_len == p.s_vvec * p.s_vxg

    @pytest.mark.parametrize("bad", [dict(s_vvec=0), dict(s_vvec=33), dict(s_imgb=0), dict(s_vxg=0)])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValidationError):
            CSCVParams(**bad)

    def test_replace(self):
        p = CSCVParams(8, 16, 2).replace(s_vxg=4)
        assert p.as_tuple() == (8, 16, 4)

    def test_frozen(self):
        with pytest.raises(Exception):
            CSCVParams().s_vvec = 4

    def test_paper_table3_triples_valid(self):
        for p in PAPER_TABLE3.values():
            assert isinstance(p, CSCVParams)

    def test_simd_lanes(self):
        # 16 float32 lanes fill one AVX-512 register exactly
        assert CSCVParams(16, 16, 2).simd_lanes(4, 512) == 1.0


class TestBlockGrid:
    def test_block_counts(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        assert grid.tiles_per_side == 5
        assert grid.num_view_groups == 6  # ceil(45 / 8)
        assert grid.num_blocks == 150

    def test_block_materialisation(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        b = grid.block(grid.num_img_blocks * 1 + 7)  # group 1, tile 7
        assert b.v0 == 8 and b.v1 == 16
        assert b.i0 == 5 and b.j0 == 10  # tile 7 = (1, 2)

    def test_tail_view_group_short(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        last = grid.block(grid.num_blocks - 1)
        assert last.num_views == 45 - 5 * 8  # 5 views in the tail group

    def test_block_id_bounds(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        with pytest.raises(ValidationError):
            grid.block(grid.num_blocks)

    def test_reference_pixel_is_tile_center(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        b = grid.block(0)
        assert b.reference_pixel == (2, 2)

    def test_pixel_ids_cover_tile(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        b = grid.block(3)
        ids = b.pixel_ids(geom.image_size)
        assert ids.size == 25
        i, j = ids // 25, ids % 25
        assert i.min() == b.i0 and i.max() == b.i1 - 1
        assert j.min() == b.j0 and j.max() == b.j1 - 1

    def test_classify_consistent_with_block(self, geom):
        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        rows = np.array([geom.row_index(9, 20), geom.row_index(0, 0)])
        cols = np.array([geom.pixel_index(6, 12), geom.pixel_index(0, 0)])
        block_id, lane, bin_, tile = grid.classify(rows, cols)
        b = grid.block(int(block_id[0]))
        assert b.v0 <= 9 < b.v1
        assert b.i0 <= 6 < b.i1 and b.j0 <= 12 < b.j1
        assert lane[0] == 9 - b.v0
        assert bin_[0] == 20

    def test_reference_bins_match_trajectory(self, geom):
        from repro.geometry.trajectory import reference_trajectory

        grid = BlockGrid(geom, CSCVParams(8, 5, 2))
        refb = grid.reference_bins()
        assert refb.shape == (geom.num_views, grid.num_img_blocks)
        # tile 12 is the centre tile; its reference pixel is (12, 12)
        ri, rj = grid.reference_pixels()
        t = 12
        expected = reference_trajectory(geom, int(ri[t]), int(rj[t]))
        np.testing.assert_array_equal(refb[:, t], expected)

    def test_non_divisible_image(self):
        g = ParallelBeamGeometry(image_size=10, num_bins=16, num_views=4, delta_angle_deg=1.0)
        grid = BlockGrid(g, CSCVParams(4, 4, 1))
        assert grid.tiles_per_side == 3
        last = grid.block(grid.num_img_blocks - 1)
        assert last.i1 == 10 and last.j1 == 10  # clipped tail tile
