"""Cross-format correctness: every format must agree with the dense result.

Covers all registered non-CSCV formats on random matrices, CT matrices,
adversarial structures (empty rows/columns, single entries, dense rows),
both dtypes, and both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    BSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSR5Matrix,
    CSRMatrix,
    CVRMatrix,
    ELLMatrix,
    ESBMatrix,
    HYBMatrix,
    MergeCSRMatrix,
    MKLLikeCSC,
    MKLLikeCSR,
    SPC5Matrix,
    VHCCMatrix,
    available_formats,
    get_format,
)

ALL_CLASSES = [
    COOMatrix,
    CSRMatrix,
    CSCMatrix,
    ELLMatrix,
    HYBMatrix,
    BSRMatrix,
    CSR5Matrix,
    SPC5Matrix,
    ESBMatrix,
    CVRMatrix,
    VHCCMatrix,
    MergeCSRMatrix,
    MKLLikeCSR,
    MKLLikeCSC,
]


def random_coo(rng, m, n, density=0.15, dtype=np.float64):
    size = max(int(m * n * density), 1)
    rows = rng.integers(0, m, size)
    cols = rng.integers(0, n, size)
    vals = rng.standard_normal(size).astype(dtype)
    return rows, cols, vals


def dense_reference(shape, rows, cols, vals):
    d = np.zeros(shape, dtype=np.float64)
    np.add.at(d, (rows, cols), vals.astype(np.float64))
    return d


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.name)
class TestFormatAgainstDense:
    def test_random_matrix(self, cls, rng, backend):
        m, n = 37, 29
        rows, cols, vals = random_coo(rng, m, n)
        fmt = cls.from_coo((m, n), rows, cols, vals)
        x = rng.standard_normal(n)
        expected = dense_reference((m, n), rows, cols, vals) @ x
        got = fmt.spmv(x)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-10)

    def test_to_dense_roundtrip(self, cls, rng):
        m, n = 13, 17
        rows, cols, vals = random_coo(rng, m, n, density=0.2)
        fmt = cls.from_coo((m, n), rows, cols, vals)
        np.testing.assert_allclose(
            fmt.to_dense(), dense_reference((m, n), rows, cols, vals), rtol=1e-12
        )

    def test_float32(self, cls, rng, backend):
        m, n = 21, 18
        rows, cols, vals = random_coo(rng, m, n, dtype=np.float32)
        fmt = cls.from_coo((m, n), rows, cols, vals, dtype=np.float32)
        assert fmt.dtype == np.float32
        x = rng.standard_normal(n).astype(np.float32)
        expected = dense_reference((m, n), rows, cols, vals) @ x.astype(np.float64)
        np.testing.assert_allclose(fmt.spmv(x), expected, rtol=2e-4, atol=2e-4)

    def test_empty_matrix(self, cls):
        z = np.zeros(0, dtype=np.int64)
        fmt = cls.from_coo((5, 4), z, z, np.zeros(0))
        assert fmt.nnz == 0
        np.testing.assert_array_equal(fmt.spmv(np.ones(4)), np.zeros(5))

    def test_single_entry(self, cls):
        fmt = cls.from_coo((6, 6), [2], [3], [7.0])
        y = fmt.spmv(np.arange(6, dtype=np.float64))
        expected = np.zeros(6)
        expected[2] = 21.0
        np.testing.assert_allclose(y, expected)

    def test_empty_rows_and_cols(self, cls, rng):
        # rows 0 and m-1, cols 0 and n-1 deliberately empty
        m, n = 10, 9
        rows = rng.integers(1, m - 1, 30)
        cols = rng.integers(1, n - 1, 30)
        vals = rng.standard_normal(30)
        fmt = cls.from_coo((m, n), rows, cols, vals)
        x = rng.standard_normal(n)
        expected = dense_reference((m, n), rows, cols, vals) @ x
        np.testing.assert_allclose(fmt.spmv(x), expected, rtol=1e-10, atol=1e-12)
        assert fmt.spmv(x)[0] == 0.0

    def test_dense_single_row(self, cls):
        # one fully dense row among sparse ones (row-length skew)
        n = 24
        rows = np.concatenate([np.full(n, 3), [0, 7]])
        cols = np.concatenate([np.arange(n), [1, 2]])
        vals = np.ones(n + 2)
        fmt = cls.from_coo((9, n), rows, cols, vals)
        y = fmt.spmv(np.ones(n))
        assert y[3] == pytest.approx(n)

    def test_duplicates_summed(self, cls):
        fmt = cls.from_coo((3, 3), [1, 1, 1], [2, 2, 0], [1.0, 2.0, 4.0])
        d = fmt.to_dense()
        assert d[1, 2] == pytest.approx(3.0)
        assert d[1, 0] == pytest.approx(4.0)

    def test_memory_bytes_contract(self, cls, rng):
        rows, cols, vals = random_coo(rng, 15, 15)
        fmt = cls.from_coo((15, 15), rows, cols, vals)
        mem = fmt.memory_bytes()
        assert set(mem) >= {"values", "indices", "total"}
        assert mem["total"] == mem["values"] + mem["indices"]
        assert mem["values"] >= fmt.nnz * fmt.dtype.itemsize

    def test_out_parameter(self, cls, rng):
        rows, cols, vals = random_coo(rng, 11, 8)
        fmt = cls.from_coo((11, 8), rows, cols, vals)
        x = rng.standard_normal(8)
        out = np.full(11, 99.0)
        res = fmt.spmv(x, out=out)
        assert res is out
        np.testing.assert_allclose(out, fmt.spmv(x))

    def test_input_validation(self, cls, rng):
        from repro.errors import ValidationError

        rows, cols, vals = random_coo(rng, 5, 5)
        fmt = cls.from_coo((5, 5), rows, cols, vals)
        with pytest.raises(ValidationError):
            fmt.spmv(np.ones(6))
        with pytest.raises(ValidationError):
            fmt.spmv(np.ones((5, 1)))


class TestRegistry:
    def test_all_names_registered(self):
        names = available_formats()
        for cls in ALL_CLASSES:
            assert cls.name in names

    def test_get_format(self):
        assert get_format("csr") is CSRMatrix

    def test_unknown_format(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            get_format("nope")

    def test_cscv_registered_too(self):
        assert "cscv-z" in available_formats()
        assert "cscv-m" in available_formats()


class TestMatmulOperator:
    def test_matmul(self, rng):
        rows, cols, vals = random_coo(rng, 9, 7)
        fmt = CSRMatrix.from_coo((9, 7), rows, cols, vals)
        x = rng.standard_normal(7)
        np.testing.assert_allclose(fmt @ x, fmt.spmv(x))


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 24),
    n=st.integers(1, 24),
    seed=st.integers(0, 2**31 - 1),
    cls_idx=st.integers(0, len(ALL_CLASSES) - 1),
)
def test_property_spmv_matches_dense(m, n, seed, cls_idx):
    """Any format, any shape, any sparsity: y == dense @ x."""
    rng = np.random.default_rng(seed)
    nnz = rng.integers(0, m * n + 1)
    rows = rng.integers(0, m, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    cls = ALL_CLASSES[cls_idx]
    fmt = cls.from_coo((m, n), rows, cols, vals)
    x = rng.standard_normal(n)
    expected = dense_reference((m, n), rows, cols, vals) @ x
    np.testing.assert_allclose(fmt.spmv(x), expected, rtol=1e-9, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_linearity(seed):
    """SpMV is linear: A(ax + bz) = a*Ax + b*Az (exact in float64 tolerance)."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = random_coo(rng, 16, 12)
    fmt = CSRMatrix.from_coo((16, 12), rows, cols, vals)
    x = rng.standard_normal(12)
    z = rng.standard_normal(12)
    a, b = rng.standard_normal(2)
    lhs = fmt.spmv(a * x + b * z)
    rhs = a * fmt.spmv(x) + b * fmt.spmv(z)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)
