"""Tests for IOBLR: mapping construction, injectivity, layout efficiency."""

import numpy as np
import pytest

from repro.bench.experiments.table1 import sample_block, sample_geometry
from repro.core.ioblr import IOBLRMapping, build_ioblr_mapping, layout_simd_efficiency
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def geom():
    return sample_geometry()


@pytest.fixture(scope="module")
def block():
    return sample_block()


@pytest.fixture(scope="module")
def mapping(geom, block):
    return build_ioblr_mapping(geom, block, s_vvec=8)


class TestMappingConstruction:
    def test_ysize_positive(self, mapping):
        assert mapping.ysize > 0
        assert mapping.ysize % mapping.s_vvec == 0

    def test_position_roundtrip(self, mapping):
        d = mapping.d_min + 1
        lane = 3
        pos = int(mapping.position(lane, d))
        assert pos == (d - mapping.d_min) * mapping.s_vvec + lane

    def test_to_curve_inverse_of_reference(self, mapping):
        lane = 2
        bin_ = int(mapping.ref_bins[lane]) + 4
        assert int(mapping.to_curve(lane, bin_)) == 4

    def test_band_covers_block_pixels(self, geom, block, mapping):
        # every nonzero of the block must land inside [d_min, d_max]
        from repro.geometry.trajectory import pixel_trajectory

        views = np.arange(block.v0, block.v1)
        for i in range(block.i0, block.i1):
            for j in range(block.j0, block.j1):
                lo, hi = pixel_trajectory(geom, i, j, views, clip=False)
                d_lo = lo - mapping.ref_bins[: views.size]
                d_hi = hi - mapping.ref_bins[: views.size]
                assert d_lo.min() >= mapping.d_min
                assert d_hi.max() <= mapping.d_max


class TestGlobalMap:
    def test_injective(self, mapping):
        assert mapping.inverse_permutation_is_consistent()

    def test_valid_rows_in_range(self, geom, mapping):
        m = mapping.global_map()
        valid = m[m >= 0]
        assert valid.min() >= 0
        assert valid.max() < geom.num_rays

    def test_rows_belong_to_block_views(self, geom, block, mapping):
        m = mapping.global_map()
        valid = m[m >= 0]
        views = valid // geom.num_bins
        assert views.min() >= block.v0
        assert views.max() < block.v1

    def test_out_of_detector_slots_invalid(self, geom, block):
        # force a band that exits the detector: offsets far below zero
        mp = build_ioblr_mapping(
            geom, block, 8,
            block_bins_lo=np.full(block.num_views, -5),
            block_bins_hi=np.full(block.num_views, 2),
        )
        m = mp.global_map()
        assert np.any(m == -1)
        assert mp.inverse_permutation_is_consistent()

    def test_tail_group_lanes_invalid(self, geom):
        from repro.core.blocks import MatrixBlock

        # block with only 3 real views inside an 8-lane group
        b = MatrixBlock(block_id=0, v0=42, v1=45, i0=5, i1=10, j0=5, j1=10)
        mp = build_ioblr_mapping(geom, b, s_vvec=8)
        m = mp.global_map().reshape(-1, 8)
        assert np.all(m[:, 3:] == -1)  # lanes beyond the real views


class TestLayoutEfficiency:
    def test_ioblr_beats_other_layouts(self, geom, block):
        means = {}
        for layout in ("bin-major", "view-major", "ioblr"):
            counts = layout_simd_efficiency(geom, block, (7, 7), 8, layout)
            means[layout] = counts.mean()
        assert means["ioblr"] > means["view-major"] > means["bin-major"]

    def test_ioblr_reference_pixel_nearly_full(self, geom, block):
        # the reference pixel's own CSCVEs are nearly full by construction
        counts = layout_simd_efficiency(geom, block, block.reference_pixel, 8, "ioblr")
        assert counts.max() == 8

    def test_counts_conserve_nnz(self, geom, block):
        # all three layouts partition the same nonzero set
        totals = {
            layout: layout_simd_efficiency(geom, block, (6, 8), 8, layout).sum()
            for layout in ("bin-major", "view-major", "ioblr")
        }
        assert len(set(totals.values())) == 1

    def test_unknown_layout(self, geom, block):
        with pytest.raises(ValidationError):
            layout_simd_efficiency(geom, block, (7, 7), 8, "diagonal")
