"""Per-format structural tests: the layout invariants each format claims."""

import numpy as np
import pytest

from repro.errors import FormatError, ValidationError
from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSR5Matrix,
    CSRMatrix,
    CVRMatrix,
    ELLMatrix,
    ESBMatrix,
    MergeCSRMatrix,
    SPC5Matrix,
    VHCCMatrix,
)
from repro.sparse.csr import segment_sum
from repro.sparse.merge_csr import merge_path_search


@pytest.fixture
def coo(rng):
    rows = rng.integers(0, 20, 120)
    cols = rng.integers(0, 16, 120)
    vals = rng.standard_normal(120)
    return COOMatrix.from_coo((20, 16), rows, cols, vals)


class TestCOO:
    def test_sorted_row_major(self, coo):
        key = coo.rows * coo.shape[1] + coo.cols
        assert np.all(np.diff(key) > 0)  # strictly increasing => deduplicated

    def test_from_dense(self):
        d = np.array([[0.0, 2.0], [3.0, 0.0]])
        coo = COOMatrix.from_dense(d)
        assert coo.nnz == 2
        np.testing.assert_array_equal(coo.to_dense(), d)

    def test_csr_csc_arrays_consistent(self, coo):
        row_ptr, col_idx, vals_r = coo.to_csr_arrays()
        col_ptr, row_idx, vals_c = coo.to_csc_arrays()
        assert row_ptr[-1] == col_ptr[-1] == coo.nnz
        assert vals_r.sum() == pytest.approx(vals_c.sum())

    def test_astype(self, coo):
        f32 = coo.astype(np.float32)
        assert f32.vals.dtype == np.float32
        assert f32.nnz == coo.nnz

    def test_row_col_nnz(self, coo):
        assert coo.row_nnz().sum() == coo.nnz
        assert coo.col_nnz().sum() == coo.nnz

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            COOMatrix.from_coo((2, 2), [2], [0], [1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            COOMatrix.from_coo((2, 2), [0, 1], [0], [1.0])


class TestSegmentSum:
    def test_empty_segments_are_zero(self):
        products = np.array([1.0, 2.0, 3.0])
        ptr = np.array([0, 0, 2, 2, 3])
        out = np.zeros(4)
        segment_sum(products, ptr, out)
        np.testing.assert_allclose(out, [0.0, 3.0, 0.0, 3.0])

    def test_all_empty(self):
        out = np.ones(3)
        segment_sum(np.zeros(0), np.zeros(4, dtype=np.int64), out)
        assert np.all(out == 0.0)

    def test_ptr_length_checked(self):
        with pytest.raises(ValidationError):
            segment_sum(np.zeros(1), np.array([0, 1]), np.zeros(3))


class TestCSR:
    def test_row_ptr_invariants(self, coo):
        csr = CSRMatrix.from_coo_matrix(coo)
        assert csr.row_ptr[0] == 0 and csr.row_ptr[-1] == csr.nnz
        assert np.all(np.diff(csr.row_ptr) >= 0)

    def test_rejects_bad_row_ptr(self):
        with pytest.raises(ValidationError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))

    def test_transpose_spmv(self, coo, rng):
        csr = CSRMatrix.from_coo_matrix(coo)
        y = rng.standard_normal(20)
        expected = coo.to_dense().T @ y
        np.testing.assert_allclose(csr.transpose_spmv(y), expected, rtol=1e-10)


class TestCSC:
    def test_col_ptr_invariants(self, coo):
        csc = CSCMatrix.from_coo_matrix(coo)
        assert csc.col_ptr[-1] == csc.nnz
        assert csc.col_nnz().sum() == csc.nnz

    def test_transpose_spmv(self, coo, rng):
        csc = CSCMatrix.from_coo_matrix(coo)
        y = rng.standard_normal(20)
        np.testing.assert_allclose(
            csc.transpose_spmv(y), coo.to_dense().T @ y, rtol=1e-10
        )


class TestELL:
    def test_width_is_max_row_nnz(self, coo):
        ell = ELLMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals)
        assert ell.width == int(coo.row_nnz().max())

    def test_padding_ratio(self, coo):
        ell = ELLMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals)
        slots = ell.width * coo.shape[0]
        assert ell.padding_ratio() == pytest.approx(slots / coo.nnz - 1)

    def test_rejects_pathological_skew(self):
        # one dense row among many empty ones
        n = 600
        rows = np.concatenate([np.zeros(n, dtype=int), [1]])
        cols = np.concatenate([np.arange(n), [0]])
        with pytest.raises(FormatError):
            ELLMatrix.from_coo((200, n), rows, cols, np.ones(n + 1))


class TestCSR5:
    def test_tile_padding(self, coo):
        m = CSR5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, sigma=4, omega=4)
        assert m.tile_vals.size % (4 * 4) == 0
        assert m.tile_vals.size >= coo.nnz

    def test_permutation_is_bijection(self, coo):
        m = CSR5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, sigma=4, omega=2)
        assert np.unique(m.perm).size == coo.nnz

    def test_rejects_bad_tile(self, coo):
        with pytest.raises(FormatError):
            CSR5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, sigma=0)


class TestSPC5:
    def test_masks_popcount_matches_values(self, coo):
        m = SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, width=8)
        pops = np.array([bin(int(x)).count("1") for x in m.masks])
        np.testing.assert_array_equal(pops, np.diff(m.voff))

    def test_block_columns_aligned(self, coo):
        m = SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, width=8)
        assert np.all(m.blk_col % 8 == 0)

    def test_no_padding_stored(self, coo):
        m = SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals)
        assert m.packed.size == coo.nnz

    def test_avg_fill_positive(self, coo):
        m = SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals)
        assert 0 < m.avg_fill() <= m.width

    def test_rejects_bad_width(self, coo):
        with pytest.raises(FormatError):
            SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, width=33)


class TestESB:
    def test_padding_below_plain_ell(self, rng):
        # skewed rows: sorting within windows must beat global-width ELL
        m, n = 64, 64
        lens = rng.integers(1, 32, m)
        rows = np.repeat(np.arange(m), lens)
        cols = np.concatenate([rng.choice(n, l, replace=False) for l in lens])
        vals = rng.standard_normal(rows.size)
        esb = ESBMatrix.from_coo((m, n), rows, cols, vals, slice_height=8, sort_window=64)
        ell_slots = m * int(lens.max())
        esb_slots = sum(sv.size for _, sv in esb.slices)
        assert esb_slots < ell_slots

    def test_permutation_is_bijection(self, coo):
        esb = ESBMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, slice_height=4)
        assert np.array_equal(np.sort(esb.perm), np.arange(coo.shape[0]))

    def test_rejects_bad_window(self, coo):
        with pytest.raises(FormatError):
            ESBMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals,
                               slice_height=8, sort_window=4)


class TestCVR:
    def test_low_padding(self, coo):
        cvr = CVRMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, num_lanes=4)
        assert cvr.padding_ratio() < 0.5

    def test_lane_grid_shape(self, coo):
        cvr = CVRMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, num_lanes=4)
        assert cvr.lane_vals.shape[1] == 4
        assert cvr.lane_vals.shape == cvr.lane_rows.shape


class TestVHCC:
    def test_panels_partition_columns(self, coo):
        v = VHCCMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, panel_width=4)
        total = sum(p[3].size for p in v.panels)
        assert total == coo.nnz
        for c0, _, pcols, _ in v.panels:
            assert c0 % 4 == 0
            assert pcols.max() < 4


class TestMergePath:
    def test_search_endpoints(self):
        row_end = np.array([2, 2, 5, 9], dtype=np.int64)
        assert merge_path_search(0, row_end, 9) == (0, 0)
        assert merge_path_search(13, row_end, 9) == (4, 9)

    def test_chunks_balanced(self, rng):
        # extreme skew: merge path must still balance (rows + nnz) work
        m = 40
        rows = np.concatenate([np.zeros(200, dtype=int), rng.integers(1, m, 40)])
        cols = rng.integers(0, 50, rows.size)
        merge = MergeCSRMatrix.from_coo((m, 50), rows, cols,
                                        rng.standard_normal(rows.size), num_chunks=8)
        loads = merge.chunk_loads()
        assert loads.max() - loads.min() <= 1 + (loads.sum() % 8 > 0)

    def test_skewed_correctness(self, rng):
        m, n = 30, 30
        rows = np.concatenate([np.zeros(150, dtype=int), rng.integers(1, m, 30)])
        cols = rng.integers(0, n, rows.size)
        vals = rng.standard_normal(rows.size)
        merge = MergeCSRMatrix.from_coo((m, n), rows, cols, vals, num_chunks=7)
        dense = np.zeros((m, n))
        np.add.at(dense, (rows, cols), vals)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(merge.spmv(x), dense @ x, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("num_chunks", [1, 2, 3, 16, 64, 1000])
    def test_chunk_count_invariance(self, coo, rng, num_chunks):
        x = rng.standard_normal(coo.shape[1])
        ref = coo.to_dense() @ x
        merge = MergeCSRMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals,
                                        num_chunks=num_chunks)
        np.testing.assert_allclose(merge.spmv(x), ref, rtol=1e-9, atol=1e-9)
