"""Tests for the performance model: machine descriptions, profiles,
roofline predictions and the paper's qualitative shape claims."""

import numpy as np
import pytest

from repro import config
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.perfmodel import SKL, ZEN2, HOST, instruction_profile, predict_gflops
from repro.perfmodel.instructions import BW_EFFICIENCY
from repro.perfmodel.platform import Machine, machine_by_name
from repro.perfmodel.roofline import (
    bottleneck,
    crossover_threads,
    predict_time,
    scalability_curve,
)
from repro.sparse import CSRMatrix, CSCMatrix, MKLLikeCSR, SPC5Matrix


@pytest.fixture(scope="module")
def formats(fine_ct):
    coo, geom = fine_ct
    z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(16, 16, 2))
    return {
        "csr": CSRMatrix.from_coo_matrix(coo),
        "csc": CSCMatrix.from_coo_matrix(coo),
        "mkl-csr": MKLLikeCSR.from_coo(coo.shape, coo.rows, coo.cols, coo.vals),
        "spc5": SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals),
        "cscv-z": z,
        "cscv-m": CSCVMMatrix.from_data(z.data),
    }


class TestMachine:
    def test_lookup(self):
        assert machine_by_name("skl") is SKL
        assert machine_by_name("ZEN2") is ZEN2
        with pytest.raises(Exception):
            machine_by_name("m1")

    def test_paper_constants(self):
        assert SKL.peak_bw_gbs == pytest.approx(202.8)
        assert ZEN2.peak_bw_gbs == pytest.approx(236.43)
        assert SKL.simd_bits == 512 and ZEN2.simd_bits == 256

    def test_simd_lanes(self):
        assert SKL.simd_lanes(4) == 16 and SKL.simd_lanes(8) == 8
        assert ZEN2.simd_lanes(4) == 8

    def test_bandwidth_saturates(self):
        assert SKL.bandwidth(64) == pytest.approx(SKL.peak_bw_gbs)
        assert SKL.bandwidth(1) < SKL.peak_bw_gbs

    def test_validation(self):
        with pytest.raises(Exception):
            Machine("bad", cores=0, max_threads=0, simd_bits=256, ghz=1,
                    peak_bw_gbs=10, core_bw_gbs=5)


class TestProfiles:
    def test_all_formats_have_profiles(self, formats):
        for fmt in formats.values():
            p = instruction_profile(fmt, SKL)
            assert p.fma_lane_groups > 0
            assert p.cycles(SKL, fmt.dtype.itemsize) > 0

    def test_cscv_has_no_gathers(self, formats):
        assert instruction_profile(formats["cscv-z"], SKL).gather_elems == 0
        assert instruction_profile(formats["cscv-m"], SKL).gather_elems == 0

    def test_csr_gathers_per_nonzero(self, formats):
        p = instruction_profile(formats["csr"], SKL)
        assert p.gather_elems == formats["csr"].nnz

    def test_csc_also_scatters(self, formats):
        p = instruction_profile(formats["csc"], SKL)
        assert p.scatter_elems == formats["csc"].nnz

    def test_bw_efficiency_ordering(self):
        # streaming formats approach peak; gather formats do not
        assert BW_EFFICIENCY["cscv-z"] > BW_EFFICIENCY["csr"] > BW_EFFICIENCY["merge"]

    def test_unknown_format_rejected(self):
        from repro.errors import ValidationError

        class Fake:
            name = "fake"
            shape = (1, 1)
            nnz = 1
            dtype = np.dtype(np.float64)

        with pytest.raises(ValidationError):
            instruction_profile(Fake(), SKL)


class TestRoofline:
    def test_time_components_positive(self, formats):
        t = predict_time(formats["cscv-m"], SKL, 16)
        assert t["memory"] > 0 and t["compute"] > 0
        assert t["total"] == max(t["memory"], t["compute"])

    def test_gflops_increase_with_threads(self, formats):
        for fmt in formats.values():
            curve = scalability_curve(fmt, SKL, (1, 4, 16))
            assert curve[1] <= curve[4] <= curve[16]

    def test_bandwidth_roof_binds_eventually(self, formats):
        assert bottleneck(formats["mkl-csr"], SKL, 64) == "memory"

    def test_low_threads_latency_bound(self, formats):
        # paper Section II: few threads => instruction latency dominates
        assert bottleneck(formats["csr"], SKL, 1) in ("compute", "memory")
        t = predict_time(formats["csr"], SKL, 1)
        assert t["compute"] > 0.3 * t["total"]

    def test_invalid_threads(self, formats):
        with pytest.raises(ValueError):
            predict_gflops(formats["csr"], SKL, 0)


@pytest.fixture(scope="module")
def tuned_formats():
    """Formats on a finely-sampled matrix with the paper's Table III
    parameter triples per CSCV variant (the setting of Fig 10/Table IV)."""
    from repro.bench.datasets import get_dataset
    from repro.core.params import PAPER_TABLE3

    coo, geom = get_dataset("clinical-small").load(dtype=np.float32)
    z = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-z", "single")])
    m_data = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-m", "single")])
    return {
        "csr": CSRMatrix.from_coo_matrix(coo),
        "csc": CSCMatrix.from_coo_matrix(coo),
        "mkl-csr": MKLLikeCSR.from_coo(coo.shape, coo.rows, coo.cols, coo.vals),
        "spc5": SPC5Matrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals),
        "cscv-z": z,
        "cscv-m": CSCVMMatrix.from_data(m_data.data),
    }


class TestPaperShapeClaims:
    """The qualitative results the reproduction must deliver (Fig 10/Table IV)."""

    def test_cscv_z_wins_single_thread(self, tuned_formats):
        formats = tuned_formats
        z1 = predict_gflops(formats["cscv-z"], SKL, 1)
        for name in ("csr", "csc", "mkl-csr", "spc5", "cscv-m"):
            assert z1 > predict_gflops(formats[name], SKL, 1), name

    def test_cscv_m_wins_many_threads(self, tuned_formats):
        formats = tuned_formats
        m64 = predict_gflops(formats["cscv-m"], SKL, 64)
        for name in ("csr", "csc", "mkl-csr", "spc5", "cscv-z"):
            assert m64 > predict_gflops(formats[name], SKL, 64), name

    def test_z_to_m_crossover_exists(self, tuned_formats):
        formats = tuned_formats
        t = crossover_threads(formats["cscv-z"], formats["cscv-m"], SKL)
        assert t is not None and 2 <= t <= 64

    def test_zen2_crossover_later_than_skl(self, tuned_formats):
        formats = tuned_formats
        # paper: M overtakes at >=16T on SKL but only at 64T on Zen2
        t_skl = crossover_threads(formats["cscv-z"], formats["cscv-m"], SKL)
        t_zen2 = crossover_threads(formats["cscv-z"], formats["cscv-m"], ZEN2)
        assert t_zen2 is not None and t_skl is not None
        assert t_zen2 > t_skl

    def test_cscv_speedup_over_vendor_in_paper_band(self, tuned_formats):
        formats = tuned_formats
        # paper: 1.89x - 3.70x over MKL-CSR at full threads (single prec.)
        ratio = predict_gflops(formats["cscv-m"], SKL, 64) / predict_gflops(
            formats["mkl-csr"], SKL, 64
        )
        assert 1.5 < ratio < 4.5

    def test_zen2_single_core_z_faster_than_skl(self, tuned_formats):
        formats = tuned_formats
        # paper: Zen2 1T CSCV-Z ~2x the SKL value
        z_skl = predict_gflops(formats["cscv-z"], SKL, 1)
        z_zen2 = predict_gflops(formats["cscv-z"], ZEN2, 1)
        assert z_zen2 > 1.2 * z_skl

    def test_zen2_m_single_thread_halved(self, tuned_formats):
        # paper: soft-vexpand makes Zen2 1T CSCV-M ~half of SKL's; each
        # platform runs its own Table III triple
        from repro.bench.datasets import get_dataset
        from repro.core.params import PAPER_TABLE3

        coo, geom = get_dataset("clinical-small").load(dtype=np.float32)
        m_zen2_fmt = CSCVMMatrix.from_ct(
            coo, geom, PAPER_TABLE3[("zen2", "cscv-m", "single")]
        )
        m_skl = predict_gflops(tuned_formats["cscv-m"], SKL, 1)
        m_zen2 = predict_gflops(m_zen2_fmt, ZEN2, 1)
        assert m_zen2 < 0.8 * m_skl

    @pytest.mark.skipif(
        config.runtime.backend == "numpy",
        reason="HOST model is calibrated against the compiled kernels",
    )
    def test_host_model_within_factor_of_measured(self, tuned_formats):
        formats = tuned_formats
        # sanity: HOST model prediction within ~5x of measured wall clock
        from repro.bench.harness import measure_format

        fmt = formats["cscv-z"]
        rec = measure_format(fmt, iterations=5, max_seconds=1)
        model = predict_gflops(fmt, HOST, 1)
        assert model / rec.gflops < 6 and rec.gflops / model < 6
