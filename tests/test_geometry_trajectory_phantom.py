"""Tests for trajectories (P1-P3) and phantoms."""

import numpy as np
import pytest

from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.phantom import (
    blocks_phantom,
    disk_phantom,
    disk_sinogram_exact,
    shepp_logan,
)
from repro.geometry.projector_strip import strip_area_matrix
from repro.geometry.trajectory import (
    check_p1_contiguity,
    check_p2_interval,
    column_nnz_spread,
    pixel_trajectory,
    reference_trajectory,
    shared_bins,
    trajectory_band,
)


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry(image_size=25, num_bins=38, num_views=45, delta_angle_deg=4.0)


class TestPixelTrajectory:
    def test_interval_valid(self, geom):
        lo, hi = pixel_trajectory(geom, 7, 7)
        assert np.all(hi >= lo)
        assert lo.shape == (geom.num_views,)

    def test_clip(self, geom):
        lo, hi = pixel_trajectory(geom, 0, 0, clip=True)
        assert lo.min() >= 0 and hi.max() < geom.num_bins

    def test_center_pixel_stays_mid_detector(self, geom):
        lo, hi = pixel_trajectory(geom, 12, 12)
        mid = geom.num_bins / 2
        assert np.all(np.abs((lo + hi) / 2 - mid) <= 2)

    def test_reference_is_min_bin(self, geom):
        lo, _ = pixel_trajectory(geom, 5, 9, clip=False)
        ref = reference_trajectory(geom, 5, 9)
        assert np.array_equal(ref, lo)

    def test_trajectory_band_contains_members(self, geom):
        pixels = [(5, 5), (5, 6), (6, 5)]
        blo, bhi = trajectory_band(geom, pixels)
        for p in pixels:
            lo, hi = pixel_trajectory(geom, *p, clip=False)
            assert np.all(blo <= lo) and np.all(bhi >= hi)


class TestSharedBins:
    def test_adjacent_share_more_than_distant(self, geom):
        adj = shared_bins(geom, (7, 7), (7, 8)).sum()
        far = shared_bins(geom, (7, 7), (12, 16)).sum()
        assert adj > far

    def test_distant_share_somewhere(self, geom):
        # Fig 2: even non-adjacent pixels share traces in limited views
        far = shared_bins(geom, (7, 8), (12, 16))
        assert far.sum() > 0

    def test_self_sharing_is_full_width(self, geom):
        lo, hi = pixel_trajectory(geom, 9, 9, clip=False)
        self_share = shared_bins(geom, (9, 9), (9, 9))
        assert np.array_equal(self_share, hi - lo + 1)


class TestProperties:
    def test_p1_holds_across_views(self, geom):
        for view in (0, 11, 22, 40):
            assert check_p1_contiguity(geom, view)

    def test_p2_holds_for_sample_pixels(self, geom):
        for (i, j) in [(3, 3), (12, 12), (20, 7)]:
            assert check_p2_interval(geom, i, j, view=13)

    def test_p3_low_column_spread(self):
        g = ParallelBeamGeometry.for_image(24, num_views=48)
        rows, cols, _ = strip_area_matrix(g)
        spread = column_nnz_spread(rows, cols, g.num_pixels)
        assert spread < 0.35  # paper: "the nnz is similar" per column


class TestPhantoms:
    def test_shepp_logan_range(self):
        img = shepp_logan(64)
        assert img.shape == (64, 64)
        assert img.min() >= 0.0 and img.max() <= 1.01

    def test_shepp_logan_skull_ring(self):
        img = shepp_logan(64)
        # outer ellipse value 1 minus inner -0.8 => ring of ~1.0, brain ~0.2
        assert img[32, 3] == pytest.approx(0.0)      # outside
        assert img[32, 32] > 0.0                      # inside the brain

    def test_disk_mass(self):
        img = disk_phantom(64, radius_frac=0.5)
        area_frac = img.sum() / img.size
        assert area_frac == pytest.approx(np.pi * 0.25 / 4, rel=0.05)

    def test_disk_sinogram_exact_shape(self):
        s = disk_sinogram_exact(20, 3, radius=4.0)
        assert s.shape == (60,)
        view = s[:20]
        assert np.all(s[20:40] == view)  # rotation-invariant

    def test_blocks_phantom_deterministic(self):
        a = blocks_phantom(32)
        b = blocks_phantom(32)
        assert np.array_equal(a, b)

    def test_bad_args(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            shepp_logan(0)
        with pytest.raises(GeometryError):
            disk_phantom(8, radius_frac=0.0)
