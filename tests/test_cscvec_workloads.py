"""Tests for the Algorithm 2 format (csc-vec) and non-CT workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import (
    laplacian_2d,
    powerlaw_graph,
    random_banded,
    row_skew,
)
from repro.errors import FormatError, ValidationError
from repro.sparse import CSCVecMatrix


class TestCSCVec:
    def test_matches_dense(self, rng):
        m, n = 27, 31
        nnz = 250
        rows, cols = rng.integers(0, m, nnz), rng.integers(0, n, nnz)
        vals = rng.standard_normal(nnz)
        dense = np.zeros((m, n))
        np.add.at(dense, (rows, cols), vals)
        x = rng.standard_normal(n)
        for s_vvec in (1, 3, 8, 16):
            fmt = CSCVecMatrix.from_coo((m, n), rows, cols, vals, s_vvec=s_vvec)
            np.testing.assert_allclose(fmt.spmv(x), dense @ x, rtol=1e-10, atol=1e-10)

    def test_segment_count(self):
        # column with 10 nonzeros at s_vvec=4 -> 3 segments
        rows = np.arange(10)
        cols = np.zeros(10, dtype=int)
        fmt = CSCVecMatrix.from_coo((10, 2), rows, cols, np.ones(10), s_vvec=4)
        assert fmt.num_segments == 3
        assert fmt.padded_slots() == 12

    def test_permutation_tax(self, rng):
        rows, cols = rng.integers(0, 9, 40), rng.integers(0, 9, 40)
        fmt = CSCVecMatrix.from_coo((9, 9), rows, cols, np.ones(40))
        assert fmt.permutation_instruction_count() == 2 * fmt.nnz

    def test_storage_identical_to_csc(self, rng):
        from repro.sparse import CSCMatrix

        rows, cols = rng.integers(0, 12, 60), rng.integers(0, 12, 60)
        vals = rng.standard_normal(60)
        a = CSCMatrix.from_coo((12, 12), rows, cols, vals)
        b = CSCVecMatrix.from_coo((12, 12), rows, cols, vals)
        assert a.memory_bytes() == b.memory_bytes()

    def test_bad_s_vvec(self, rng):
        with pytest.raises(FormatError):
            CSCVecMatrix.from_coo((3, 3), [0], [0], [1.0], s_vvec=0)

    def test_instruction_profile_exists(self, rng):
        from repro.perfmodel import SKL, instruction_profile

        fmt = CSCVecMatrix.from_coo((8, 8), [1, 2], [3, 3], [1.0, 2.0])
        p = instruction_profile(fmt, SKL)
        assert p.gather_elems == 2 and p.scatter_elems == 2


class TestWorkloads:
    def test_laplacian_structure(self):
        lap = laplacian_2d(8)
        dense = lap.to_dense()
        assert np.allclose(dense, dense.T)  # symmetric
        assert np.all(np.diag(dense) == 4.0)
        # interior row sums are zero (discrete Laplacian)
        interior = 3 * 8 + 3  # pixel (3,3)
        assert dense[interior].sum() == 0.0

    def test_laplacian_is_ell_friendly(self):
        lap = laplacian_2d(12)
        assert row_skew(lap) < 1.3

    def test_powerlaw_is_skewed(self):
        g = powerlaw_graph(500, m=4, seed=1)
        assert row_skew(g) > 4.0

    def test_powerlaw_symmetric(self):
        g = powerlaw_graph(100, m=3)
        d = g.to_dense()
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0.0)

    def test_banded_band_respected(self):
        b = random_banded(50, bandwidth=3, density=1.0)
        assert np.all(np.abs(b.rows - b.cols) <= 3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            laplacian_2d(1)
        with pytest.raises(ValidationError):
            powerlaw_graph(3, m=4)
        with pytest.raises(ValidationError):
            random_banded(10, bandwidth=0)

    def test_all_formats_correct_on_laplacian(self, rng):
        from repro.sparse import CSRMatrix, ELLMatrix, HYBMatrix, MergeCSRMatrix

        lap = laplacian_2d(10)
        x = rng.standard_normal(lap.shape[1])
        ref = lap.to_dense() @ x
        for cls in (CSRMatrix, ELLMatrix, HYBMatrix, MergeCSRMatrix):
            fmt = cls.from_coo(lap.shape, lap.rows, lap.cols, lap.vals)
            np.testing.assert_allclose(fmt.spmv(x), ref, rtol=1e-10, atol=1e-10)

    def test_ell_refuses_powerlaw_skew(self):
        from repro.sparse import ELLMatrix

        g = powerlaw_graph(3000, m=2, seed=0)
        if row_skew(g) > ELLMatrix.max_width_factor:
            with pytest.raises(FormatError):
                ELLMatrix.from_coo(g.shape, g.rows, g.cols, g.vals)


@settings(max_examples=20, deadline=None)
@given(s_vvec=st.integers(1, 12), seed=st.integers(0, 2**31 - 1))
def test_property_cscvec_any_segment_length(s_vvec, seed):
    """csc-vec is exact for any segment length on random matrices."""
    rng = np.random.default_rng(seed)
    m = n = 15
    nnz = int(rng.integers(1, 80))
    rows, cols = rng.integers(0, m, nnz), rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    dense = np.zeros((m, n))
    np.add.at(dense, (rows, cols), vals)
    x = rng.standard_normal(n)
    fmt = CSCVecMatrix.from_coo((m, n), rows, cols, vals, s_vvec=s_vvec)
    np.testing.assert_allclose(fmt.spmv(x), dense @ x, rtol=1e-9, atol=1e-9)
