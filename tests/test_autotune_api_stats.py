"""Tests for autotuning, the top-level API, and matrix statistics."""

import numpy as np
import pytest

from repro.api import build_ct_matrix, build_format, spmv_all_formats
from repro.core.autotune import AutotuneResult, autotune_parameters, parameter_sweep
from repro.core.params import CSCVParams
from repro.errors import AutotuneError, ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.csr import CSRMatrix
from repro.sparse.stats import (
    MatrixStats,
    column_bandwidth,
    effective_bandwidth_ratio,
    memory_requirement,
)


@pytest.fixture(scope="module")
def ct(fine_ct):
    return fine_ct


class TestParameterSweep:
    def test_structural_sweep(self, ct):
        coo, geom = ct
        points = parameter_sweep(
            coo, geom, s_vvec_grid=(4, 8), s_imgb_grid=(8, 16), s_vxg_grid=(1, 2),
        )
        assert len(points) == 8
        for p in points:
            assert p.r_nnze >= 0
            assert p.memory_m <= p.memory_z
            assert p.gflops_z is None  # measure=False

    def test_measured_sweep(self, ct):
        coo, geom = ct
        points = parameter_sweep(
            coo, geom, s_vvec_grid=(8,), s_imgb_grid=(8,), s_vxg_grid=(1,),
            measure=True, iterations=3,
        )
        assert points[0].gflops_z > 0 and points[0].gflops_m > 0


class TestAutotune:
    def test_model_scorer_deterministic(self, ct):
        coo, geom = ct
        kwargs = dict(
            scorer="model", s_vvec_grid=(4, 8), s_imgb_grid=(8, 16), s_vxg_grid=(1, 2),
        )
        a = autotune_parameters(coo, geom, **kwargs)
        b = autotune_parameters(coo, geom, **kwargs)
        assert a.best_z == b.best_z and a.best_m == b.best_m

    def test_model_scorer_m_prefers_low_memory(self, ct):
        coo, geom = ct
        res = autotune_parameters(
            coo, geom, scorer="model",
            s_vvec_grid=(4, 16), s_imgb_grid=(8,), s_vxg_grid=(1,),
        )
        mems = {p.params.s_vvec: p.memory_m for p in res.points}
        assert res.best_m.s_vvec == min(mems, key=mems.get)

    def test_result_table_rows(self, ct):
        coo, geom = ct
        res = autotune_parameters(
            coo, geom, scorer="model",
            s_vvec_grid=(4, 8), s_imgb_grid=(8,), s_vxg_grid=(1,),
        )
        rows = res.as_table_rows()
        assert len(rows) == 2 and rows[0][0] == "cscv-z"

    def test_unknown_scorer(self, ct):
        coo, geom = ct
        with pytest.raises(AutotuneError):
            autotune_parameters(coo, geom, scorer="oracle")


class TestTopLevelAPI:
    def test_build_ct_matrix_projectors(self):
        for projector in ("strip", "pixel"):
            coo, geom = build_ct_matrix(12, projector=projector)
            assert coo.shape == geom.shape
            assert coo.nnz > 0

    def test_build_ct_matrix_unknown_projector(self):
        with pytest.raises(ValidationError):
            build_ct_matrix(8, projector="fan")

    def test_build_format_plain(self, ct):
        coo, geom = ct
        fmt = build_format("csr", coo)
        assert isinstance(fmt, CSRMatrix)

    def test_build_format_cscv_needs_geom(self, ct):
        coo, _ = ct
        with pytest.raises(ValidationError):
            build_format("cscv-z", coo)

    def test_build_format_cscv_with_params(self, ct):
        coo, geom = ct
        fmt = build_format("cscv-m", coo, geom=geom, params=CSCVParams(8, 8, 1))
        assert fmt.params.s_vvec == 8

    def test_spmv_all_formats_agree(self):
        geom = ParallelBeamGeometry.for_image(12, num_views=16)
        coo, geom = build_ct_matrix(12, geom=geom)
        x = np.linspace(0, 1, coo.shape[1])
        results = spmv_all_formats(coo, x, geom=geom)
        assert "cscv-z" in results and "csr" in results
        ref = results["csr"].astype(np.float64)
        for name, y in results.items():
            rel = np.abs(y.astype(np.float64) - ref).max() / np.abs(ref).max()
            assert rel < 1e-6, name

    def test_spmv_all_formats_skips_cscv_without_geom(self, ct):
        from repro.api import SkippedFormat

        coo, _ = ct
        results = spmv_all_formats(coo, np.ones(coo.shape[1]), formats=["csr", "cscv-z"])
        assert "csr" in results and "cscv-z" in results
        skip = results["cscv-z"]
        assert isinstance(skip, SkippedFormat) and not skip
        assert "geom=" in skip.reason
        assert results["csr"].shape == (coo.shape[0],)


class TestStats:
    def test_matrix_stats_basic(self, ct):
        coo, geom = ct
        st = MatrixStats.from_coo(coo.shape, coo.rows, coo.cols)
        assert st.nnz == coo.nnz
        assert st.row_nnz_mean == pytest.approx(coo.nnz / coo.shape[0])
        assert 0 < st.density < 1

    def test_p3_spread_axes(self, ct):
        coo, _ = ct
        st = MatrixStats.from_coo(coo.shape, coo.rows, coo.cols)
        assert st.p3_spread("col") >= 0
        assert st.p3_spread("row") >= 0
        with pytest.raises(ValueError):
            st.p3_spread("diag")

    def test_memory_requirement_composition(self, ct):
        coo, _ = ct
        csr = CSRMatrix.from_coo_matrix(coo)
        mem = memory_requirement(csr)
        assert mem["M_rit"] == mem["M_A"] + mem["M_x"] + mem["M_y"]
        assert mem["M_x"] == coo.shape[1] * csr.dtype.itemsize

    def test_effective_bandwidth_ratio(self, ct):
        coo, _ = ct
        csr = CSRMatrix.from_coo_matrix(coo)
        r = effective_bandwidth_ratio(csr, seconds=1.0, peak_bandwidth_gbs=100.0)
        assert r == pytest.approx(memory_requirement(csr)["M_rit"] / 1e11)
        with pytest.raises(ValueError):
            effective_bandwidth_ratio(csr, 0.0, 100.0)

    def test_column_bandwidth_ct_matrix_is_huge(self, ct):
        # a CT pixel is touched by every view -> bin-major row span ~ m
        coo, geom = ct
        span = column_bandwidth(coo.rows, coo.cols, coo.shape[1])
        occupied = span[span > 0]
        assert occupied.max() > 0.8 * coo.shape[0]

    def test_column_bandwidth_empty_columns_zero(self):
        span = column_bandwidth(np.array([0]), np.array([1]), 3)
        assert span[0] == 0 and span[2] == 0 and span[1] == 1
