"""Tests for the observability layer (repro.obs) and its integrations."""

from __future__ import annotations

import io
import json
import time

import numpy as np
import pytest

from repro import config, obs
from repro.obs.metrics import MetricsRegistry
from repro.utils.timing import TimingStats, min_time, time_stats


@pytest.fixture
def traced():
    """Enable tracing with clean state; restore everything afterwards."""
    prev_trace = config.runtime.trace
    obs.reset()
    obs.enable()
    yield obs.tracer
    obs.disable()
    obs.reset()
    config.runtime.trace = prev_trace


@pytest.fixture
def clean_metrics():
    obs.registry.reset()
    yield obs.registry
    obs.registry.reset()


# ---------------------------------------------------------------------- #
# spans


class TestSpans:
    def test_nesting_parent_links_and_depth(self, traced):
        with obs.span("outer"):
            with obs.span("mid"):
                with obs.span("inner"):
                    pass
        by_name = {s.name: s for s in traced.finished()}
        assert by_name["outer"].parent == -1 and by_name["outer"].depth == 0
        assert by_name["mid"].parent == by_name["outer"].id
        assert by_name["inner"].parent == by_name["mid"].id
        assert by_name["inner"].depth == 2

    def test_timing_monotonic_and_contained(self, traced):
        with obs.span("outer"):
            time.sleep(0.001)
            with obs.span("inner"):
                time.sleep(0.002)
            time.sleep(0.001)
        outer = traced.find("outer")[0]
        inner = traced.find("inner")[0]
        assert inner.seconds >= 0.002
        assert outer.seconds >= inner.seconds
        assert outer.start <= inner.start and inner.end <= outer.end

    def test_attrs_at_open_and_via_set(self, traced):
        with obs.span("s", nnz=7) as s:
            s.set(bytes=13)
        rec = traced.find("s")[0]
        assert rec.attrs == {"nnz": 7, "bytes": 13}

    def test_completion_order_is_children_first(self, traced):
        with obs.span("a"):
            with obs.span("b"):
                pass
        assert [s.name for s in traced.finished()] == ["b", "a"]

    def test_disabled_span_is_noop(self):
        obs.disable()
        n0 = len(obs.tracer.finished())
        with obs.span("nope") as s:
            s.set(x=1)  # must not raise
        assert len(obs.tracer.finished()) == n0

    def test_exception_still_closes_span(self, traced):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        rec = traced.find("boom")[0]
        assert rec.end >= rec.start

    def test_total_aggregates(self, traced):
        for _ in range(3):
            with obs.span("rep"):
                pass
        assert len(traced.find("rep")) == 3
        assert traced.total("rep") >= 0.0


# ---------------------------------------------------------------------- #
# metrics


class TestMetrics:
    def test_counter_accumulates(self, clean_metrics):
        c = obs.counter("t.calls")
        c.inc()
        c.inc(2.5)
        assert obs.counter("t.calls").value == 3.5

    def test_counter_rejects_negative(self, clean_metrics):
        with pytest.raises(ValueError):
            obs.counter("t.neg").inc(-1)

    def test_gauge_set_and_inc(self, clean_metrics):
        g = obs.gauge("t.g")
        g.set(4.0)
        g.inc(0.5)
        assert g.value == 4.5

    def test_histogram_buckets_sum_count(self, clean_metrics):
        h = obs.histogram("t.h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 1, 1]
        assert snap["count"] == 4 and snap["sum"] == pytest.approx(105.0)
        assert snap["min"] == 0.5 and snap["max"] == 100.0
        assert h.mean == pytest.approx(105.0 / 4)

    def test_kind_collision_raises(self, clean_metrics):
        obs.counter("t.same")
        with pytest.raises(TypeError):
            obs.gauge("t.same")

    def test_registry_disable_makes_mutations_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc()
        reg.gauge("y").set(9)
        reg.histogram("z").observe(1.0)
        assert c.value == 0.0
        assert reg.gauge("y").value == 0.0
        assert reg.histogram("z").count == 0

    def test_snapshot_is_plain_data(self, clean_metrics):
        obs.counter("t.c").inc()
        obs.histogram("t.h").observe(0.2)
        snap = obs.registry.snapshot()
        json.dumps(snap)  # must be serialisable
        assert snap["t.c"]["type"] == "counter"

    def test_snapshot_safe_under_concurrent_registration(self, clean_metrics):
        """snapshot() must hold the registry lock for its whole iteration."""
        import threading

        errors = []

        def churn():
            # keep the registry small but guarantee fresh-name inserts
            # are landing while snapshots iterate
            for i in range(4000):
                obs.counter(f"race.c{i % 500}").inc()

        def snap():
            try:
                for _ in range(100):
                    json.dumps(obs.registry.snapshot())
            except RuntimeError as exc:  # "dict changed size ..."
                errors.append(exc)

        churner = threading.Thread(target=churn)
        snapper = threading.Thread(target=snap)
        churner.start()
        snapper.start()
        churner.join()
        snapper.join()
        assert not errors

    def test_histogram_quantiles_in_snapshot(self, clean_metrics):
        h = obs.histogram("t.q", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0, 8.0):
            h.observe(v)
        snap = h.snapshot()
        assert set(snap["quantiles"]) == {"p50", "p90", "p99"}
        # estimates interpolate inside buckets but must stay clamped to
        # the observed range and be monotone in q
        q50, q90, q99 = (snap["quantiles"][k] for k in ("p50", "p90", "p99"))
        assert 0.5 <= q50 <= q90 <= q99 <= 8.0
        assert h.quantile(0.01) >= 0.5  # clamped to the observed min

    def test_histogram_custom_quantiles(self, clean_metrics):
        h = obs.histogram("t.q2", buckets=(10.0,), quantiles=(0.25, 0.75))
        h.observe(5.0)
        assert set(h.snapshot()["quantiles"]) == {"p25", "p75"}

    def test_histogram_rejects_bad_quantiles(self, clean_metrics):
        with pytest.raises(ValueError):
            obs.histogram("t.q3", quantiles=(0.0,))
        with pytest.raises(ValueError):
            obs.histogram("t.q4", quantiles=(1.5,))

    def test_empty_histogram_quantiles_are_none(self, clean_metrics):
        h = obs.histogram("t.q5")
        assert h.quantile(0.9) is None
        assert all(v is None for v in h.snapshot()["quantiles"].values())


# ---------------------------------------------------------------------- #
# exporters


class TestExporters:
    def test_jsonl_roundtrip(self, traced, tmp_path):
        with obs.span("outer", nnz=11):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        n = obs.dump_jsonl(traced.finished(), str(path))
        assert n == 2
        back = obs.load_jsonl(str(path))
        orig = traced.finished()
        assert [s.name for s in back] == [s.name for s in orig]
        assert [s.parent for s in back] == [s.parent for s in orig]
        assert back[1].attrs == {"nnz": 11}
        assert back[0].seconds == pytest.approx(orig[0].seconds)

    def test_jsonl_numpy_attrs_serialise(self, traced):
        with obs.span("np", nnz=np.int64(5), rate=np.float32(0.5), arr=np.arange(2)):
            pass
        buf = io.StringIO()
        obs.dump_jsonl(traced.finished(), buf)
        d = json.loads(buf.getvalue())
        assert d["attrs"]["nnz"] == 5
        assert isinstance(d["attrs"]["arr"], str)

    def test_dump_trace_uses_config_path(self, traced, tmp_path, monkeypatch):
        target = tmp_path / "t.jsonl"
        monkeypatch.setattr(config.runtime, "trace_path", str(target))
        with obs.span("x"):
            pass
        assert obs.dump_trace() == str(target)
        assert target.exists()

    def test_prometheus_text_shapes(self, clean_metrics):
        obs.counter("spmv.calls.z.c").inc(3)
        obs.gauge("sirt.residual").set(0.25)
        obs.histogram("h", buckets=(1.0,)).observe(0.5)
        text = obs.prometheus_text(obs.registry)
        assert "# TYPE repro_spmv_calls_z_c counter" in text
        assert "repro_spmv_calls_z_c 3.0" in text
        assert "repro_sirt_residual 0.25" in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_count 1" in text

    def test_prometheus_quantile_lines(self, clean_metrics):
        h = obs.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = obs.prometheus_text(obs.registry)
        assert 'repro_lat{quantile="0.5"}' in text
        assert 'repro_lat{quantile="0.99"}' in text

    def test_stage_summary_has_exact_quantile_columns(self, traced):
        from repro.obs.export import stage_summary

        for _ in range(5):
            with obs.span("stage.a"):
                pass
        out = stage_summary(traced.finished())
        assert "p90 ms" in out and "p99 ms" in out and "stage.a" in out

    def test_tree_report_and_summary(self, traced):
        with obs.span("build.cscv"):
            with obs.span("build.ioblr"):
                pass
        tree = obs.trace_report()
        assert "build.cscv" in tree and "build.ioblr" in tree
        agg = obs.trace_report(aggregate=True)
        assert "build.ioblr" in agg and "calls" in agg

    def test_empty_reports(self, traced):
        assert "no spans" in obs.trace_report()
        assert "no spans" in obs.trace_report(aggregate=True)


# ---------------------------------------------------------------------- #
# pipeline integration


class TestPipelineSpans:
    def test_build_emits_stage_spans(self, traced, small_ct_f32):
        from repro.core.builder import build_cscv
        from repro.core.params import CSCVParams

        coo, geom = small_ct_f32
        build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 16, 2))
        names = {s.name for s in traced.finished()}
        assert {"build.cscv", "build.trajectory", "build.ioblr",
                "build.pack", "build.cscve", "build.vxg", "build.ymap",
                "build.merge"} <= names
        root = traced.find("build.cscv")[0]
        pack = traced.find("build.pack")[0]
        assert root.attrs["nnz"] == coo.nnz
        assert pack.parent == root.id and pack.attrs["workers"] >= 1
        # trajectory/ioblr nest under the root; packing stages under pack
        for s in traced.finished():
            if s.name in ("build.trajectory", "build.ioblr"):
                assert s.parent == root.id
            elif s.name in ("build.cscve", "build.vxg", "build.ymap",
                            "build.merge"):
                assert s.parent == pack.id

    def test_spmv_spans_and_counters(self, traced, clean_metrics, small_ct_f32, backend):
        from repro.core.format_z import CSCVZMatrix

        coo, geom = small_ct_f32
        a = CSCVZMatrix.from_ct(coo, geom)
        x = np.ones(coo.shape[1], dtype=np.float32)
        y = np.zeros(coo.shape[0], dtype=np.float32)
        a.spmv_into(x, y)
        spans = obs.tracer.find("spmv.z")
        assert len(spans) == 1
        assert spans[0].attrs["backend"] in ("c", "flat", "threaded")
        calls = [n for n in obs.registry.names() if n.startswith("spmv.calls.z.")]
        assert calls and obs.registry.get(calls[0]).value == 1

    def test_dispatch_fallback_counter(self, clean_metrics):
        from repro.kernels import dispatch

        prev = config.runtime.backend
        config.runtime.backend = "numpy"
        try:
            assert dispatch.get("csr_spmv", np.float64) is None
        finally:
            config.runtime.backend = prev
        assert obs.registry.get("dispatch.fallback.csr_spmv").value >= 1

    def test_solver_iteration_spans_and_residual_gauge(self, traced, clean_metrics,
                                                       small_ct_f32):
        from repro.recon import ProjectionOperator, sirt_reconstruct
        from repro.sparse.csr import CSRMatrix

        coo, geom = small_ct_f32
        op = ProjectionOperator(CSRMatrix.from_coo_matrix(coo))
        sino = op.forward(np.ones(coo.shape[1], dtype=np.float32))
        sirt_reconstruct(op, sino, iterations=3)
        iters = obs.tracer.find("sirt.iter")
        assert len(iters) == 3
        assert [s.attrs["k"] for s in iters] == [0, 1, 2]
        assert all("residual" in s.attrs for s in iters)
        assert obs.registry.get("sirt.iterations").value == 3
        assert obs.registry.get("sirt.residual").value >= 0.0

    def test_build_metrics_recorded(self, clean_metrics, small_ct_f32):
        from repro.core.builder import build_cscv
        from repro.core.params import CSCVParams

        coo, geom = small_ct_f32
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 16, 2))
        assert obs.registry.get("build.calls").value == 1
        assert obs.registry.get("build.r_nnze").count == 1
        fill = obs.registry.get("build.vxg_fill").value
        assert fill == pytest.approx(data.nnz / data.stored_slots)


# ---------------------------------------------------------------------- #
# cross-thread trace propagation


class TestTracePropagation:
    def test_current_context_and_attach(self, traced):
        assert obs.tracer.current_context() is None
        with obs.span("outer"):
            ctx = obs.tracer.current_context()
            assert ctx is not None
        with obs.tracer.attach(ctx):
            with obs.span("adopted"):
                pass
        with obs.tracer.attach(None):  # no-op attach
            with obs.span("rootish"):
                pass
        outer = traced.find("outer")[0]
        adopted = traced.find("adopted")[0]
        assert adopted.parent == outer.id
        assert adopted.depth == outer.depth + 1
        assert traced.find("rootish")[0].parent == -1

    def test_pool_worker_spans_parent_under_submitter(self, traced):
        from repro.utils.pool import SharedPool, run_resilient

        pool = SharedPool("test-trace-prop", lambda: 2)

        def work(i):
            with obs.span("worker.task", item=i):
                return i * 2

        try:
            with obs.span("fanout"):
                out = run_resilient(pool, work, range(4), 2, label="traceprop")
        finally:
            pool.shutdown()
        assert out == [0, 2, 4, 6]
        root = traced.find("fanout")[0]
        tasks = traced.find("worker.task")
        assert len(tasks) == 4
        assert all(t.parent == root.id and t.depth == 1 for t in tasks)

    def test_serial_degradation_keeps_parenting(self, traced, clean_metrics):
        """Workers that crash degrade to the caller thread, whose span
        stack still holds the submitting span — parenting must survive."""
        from repro.resilience import faults
        from repro.utils.pool import SharedPool, run_resilient

        pool = SharedPool("test-trace-serial", lambda: 2)

        def work(i):
            with obs.span("worker.task", item=i):
                return i + 1

        try:
            with faults.inject("pool.task.traceser:raise"):
                with obs.span("fanout"):
                    out = run_resilient(pool, work, range(3), 2,
                                        label="traceser")
        finally:
            pool.shutdown()
        assert out == [1, 2, 3]
        root = traced.find("fanout")[0]
        tasks = traced.find("worker.task")
        assert len(tasks) == 3
        assert all(t.parent == root.id and t.depth == 1 for t in tasks)


# ---------------------------------------------------------------------- #
# overhead + timing protocol


class TestOverheadAndTiming:
    def test_disabled_span_overhead_is_small(self):
        """Disabled span() must be branch-cheap (no allocation, no record)."""
        obs.disable()

        def plain():
            return sum(range(200))

        def instrumented():
            with obs.span("x"):
                return sum(range(200))

        t_plain = min_time(plain, iterations=300, warmup=20, max_seconds=1.0)
        t_inst = min_time(instrumented, iterations=300, warmup=20, max_seconds=1.0)
        # generous bound: the no-op context adds well under 100% to a
        # microsecond-scale body; on real SpMV bodies it's invisible
        assert t_inst < t_plain * 2.0 + 5e-6

    def test_time_stats_fields(self):
        st = time_stats(lambda: None, iterations=10, warmup=2, max_seconds=5.0)
        assert isinstance(st, TimingStats)
        assert st.iterations == 10 and st.warmup == 2
        assert st.min <= st.p50 <= st.mean + 3 * st.std + 1e-9
        assert st.std >= 0.0

    def test_min_time_matches_stats_protocol(self):
        assert min_time(lambda: None, iterations=5, warmup=0) >= 0.0

    def test_warmup_counts_against_budget(self):
        """A slow fn must not run the full warmup before the cap bites."""
        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.03)

        time_stats(slow, iterations=100, warmup=50, max_seconds=0.05)
        # budget ~0.05s = ~2 calls of 0.03s; warmup alone would be 50
        assert len(calls) <= 5

    def test_at_least_one_timed_iteration(self):
        st = time_stats(lambda: time.sleep(0.02), iterations=100, warmup=3,
                        max_seconds=0.01)
        assert st.iterations >= 1


# ---------------------------------------------------------------------- #
# harness + CLI integration


class TestHarnessAndCLI:
    def test_perf_record_stats_fields(self, small_ct_f32):
        from repro.bench.harness import measure_format
        from repro.sparse.csr import CSRMatrix

        coo, geom = small_ct_f32
        rec = measure_format(CSRMatrix.from_coo_matrix(coo), iterations=3)
        assert rec.mean_seconds >= rec.seconds > 0
        assert rec.p50_seconds >= rec.seconds
        assert rec.timed_iterations >= 1
        assert rec.noise >= 0.0

    def test_info_reports_obs_state(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "tracing" in out and "metrics" in out and "profiling" in out

    def test_trace_cli_renders_file(self, traced, tmp_path, capsys):
        from repro.cli import main

        with obs.span("build.cscv"):
            with obs.span("build.vxg"):
                pass
        path = tmp_path / "t.jsonl"
        obs.dump_jsonl(traced.finished(), str(path))
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "build.cscv" in out and "build.vxg" in out
        assert main(["trace", str(path), "--aggregate"]) == 0
        assert "calls" in capsys.readouterr().out

    def test_metrics_cli(self, clean_metrics, capsys):
        from repro.cli import main

        obs.counter("t.cli").inc()
        assert main(["metrics"]) == 0
        assert "repro_t_cli 1.0" in capsys.readouterr().out

    def test_cli_dumps_trace_with_env(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        target = tmp_path / "cli-trace.jsonl"
        monkeypatch.setattr(config.runtime, "trace", True)
        monkeypatch.setattr(config.runtime, "trace_path", str(target))
        prev_enabled = obs.tracer.enabled
        obs.reset()
        try:
            # --no-cache: the assertion below wants the build spans, which
            # a warm operator-cache hit would legitimately skip
            assert main(["reconstruct", "--solver", "sirt", "--size", "16",
                         "--iterations", "2", "--no-cache"]) == 0
        finally:
            obs.tracer.enabled = prev_enabled
            if not prev_enabled:
                from repro.obs import perf
                perf.disable()
        assert target.exists()
        names = {s.name for s in obs.load_jsonl(str(target))}
        assert "build.cscv" in names and "sirt.iter" in names
        obs.reset()


class TestProfileHooks:
    def test_disabled_profile_is_noop(self):
        from repro.obs import profile

        profile.disable()
        with profile.profiled("x"):
            pass  # must not start cProfile

    def test_enabled_profile_dumps_stats(self, tmp_path):
        from repro.obs import profile

        out = tmp_path / "p.pstats"
        profile.enable(str(out))
        try:
            with profile.profiled("region"):
                sum(range(1000))
        finally:
            profile.disable()
        assert out.exists()

    def test_env_parse(self, monkeypatch):
        from repro.obs import profile

        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert profile.env_profile() == (False, None)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile.env_profile() == (True, None)
        monkeypatch.setenv("REPRO_PROFILE", "/tmp/x.pstats")
        assert profile.env_profile() == (True, "/tmp/x.pstats")


class TestEnvGates:
    def test_env_trace_parse(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert config.env_trace() == (False, None)
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert config.env_trace() == (False, None)
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert config.env_trace() == (True, None)
        monkeypatch.setenv("REPRO_TRACE", "/tmp/out.jsonl")
        assert config.env_trace() == (True, "/tmp/out.jsonl")

    def test_status_keys(self):
        st = obs.status()
        assert {"tracing", "trace_path", "spans_recorded", "metrics",
                "metrics_registered", "profiling"} <= set(st)
