"""Tests for repro.dist: sharded operators over a worker-process pool.

The distributed layer's whole contract is *bitwise determinism*: the
shard partition — not the worker count — fixes the floating-point
reduction order, so forward, adjoint and SpMM results must be identical
for any ``REPRO_SHARD_WORKERS``, including the in-process serial path
and the post-failure degraded path.
"""

import numpy as np
import pytest

from repro import api, config
from repro.dist import (
    ShardedOperator,
    fixed_order_sum,
    plan_shards,
    resolve_shards,
    shard_geometry,
)
from repro.dist.transport import SharedMemoryTransport, attach_view, get_transport
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.resilience import faults

SIZE = 32


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry.for_image(SIZE)


@pytest.fixture(autouse=True)
def _one_thread():
    """Pin the kernel thread count so serial and worker-pool execution
    share one per-shard thread budget (bitwise checks need it)."""
    prev = config.runtime.threads
    config.runtime.threads = 1
    yield
    config.runtime.threads = prev


def _operands(op, k=3, seed=7):
    rng = np.random.default_rng(seed)
    m, n = op.shape
    x = np.linspace(0.5, 1.5, n).astype(op.dtype)
    X = np.ascontiguousarray(rng.random((n, k)), dtype=op.dtype)
    y = rng.random(m).astype(op.dtype)
    return x, X, y


# --------------------------------------------------------------------- #
# partitioning


class TestPartition:
    def test_resolve_precedence(self):
        prev = config.runtime.shards
        config.runtime.shards = 7
        try:
            assert resolve_shards(64, 3, 1) == 3       # explicit wins
            assert resolve_shards(64, None, 1) == 7    # then config
        finally:
            config.runtime.shards = prev
        assert resolve_shards(64, None, 1) == 4        # auto: max(4, w)
        assert resolve_shards(64, None, 6) == 6
        assert resolve_shards(3, None, 8) == 3         # clamped to views

    def test_plan_covers_views_contiguously(self, geom):
        for s in (1, 3, 4, 7):
            shards = plan_shards(geom, s)
            assert shards[0].v0 == 0
            assert shards[-1].v1 == geom.num_views
            for a, b in zip(shards, shards[1:]):
                assert a.v1 == b.v0
                assert a.r1 == b.r0
            assert all(sp.num_views > 0 for sp in shards)

    def test_shard_geometry_replays_sweep_angles(self, geom):
        spec = plan_shards(geom, 4)[2]
        sub = shard_geometry(geom, spec)
        assert sub.num_views == spec.num_views
        # the shard's angles are the parent's — same float expressions
        assert np.array_equal(sub.view_angles(degrees=True),
                              geom.view_angles(degrees=True)[spec.v0:spec.v1])

    def test_fixed_order_sum_is_left_to_right(self, rng):
        slots = rng.random((5, 11, 2)).astype(np.float32)
        acc = slots[0].copy()
        for s in range(1, 5):
            acc = acc + slots[s]
        assert np.array_equal(fixed_order_sum(slots), acc)


# --------------------------------------------------------------------- #
# transport


class TestTransport:
    def test_shm_roundtrip_and_reuse(self, rng):
        tp = SharedMemoryTransport()
        try:
            arr = rng.random((6, 4)).astype(np.float32)
            desc = tp.scatter("x", arr)
            cache: dict = {}
            view = attach_view(desc, cache)
            assert np.array_equal(view, arr)

            desc2, out = tp.allgather("y", (3, 2), np.float64)
            attach_view(desc2, cache)[...] = 5.0
            assert np.all(out == 5.0)

            desc3, slots = tp.reduce_slots("p", (3, 2), np.float32, slots=4)
            assert slots.shape == (4, 3, 2)

            # growing a key replaces the segment under the same key
            big = rng.random((64, 64)).astype(np.float32)
            desc4 = tp.scatter("x", big)
            assert desc4["shm"] != desc["shm"]
            # numpy views pin the mmaps: drop them before closing, the
            # same discipline the worker loop follows
            del view, out, slots
            for shm in cache.values():
                shm.close()
        finally:
            tp.close()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValidationError, match="unknown shard transport"):
            get_transport("carrier-pigeon")


# --------------------------------------------------------------------- #
# serial sharded execution (no processes)


class TestSerialSharding:
    def test_forward_matches_unsharded_bitwise(self, geom):
        # explicit shard_workers=1 keeps these serial even when the
        # suite runs under a CI-wide REPRO_SHARD_WORKERS
        plain = api.operator(geom, fmt="csr", shard_workers=1)
        with api.operator(geom, fmt="csr", shards=5, shard_workers=1) as op:
            assert isinstance(op, ShardedOperator)
            x, X, y = _operands(op)
            assert np.array_equal(op.forward(x), plain.forward(x))
            assert np.array_equal(op.forward(X), plain.forward(X))
            # adjoint association differs from the unsharded operator by
            # design (fixed shard order) but must stay numerically close
            assert np.allclose(op.adjoint(y), plain.adjoint(y),
                               rtol=1e-6, atol=1e-9)

    def test_shard_count_fixes_adjoint_bits(self, geom):
        with api.operator(geom, fmt="csr", shards=4, shard_workers=1) as a, \
                api.operator(geom, fmt="csr", shards=4, shard_workers=1) as b:
            _, _, y = _operands(a)
            assert np.array_equal(a.adjoint(y), b.adjoint(y))

    def test_topology_reports_partition(self, geom):
        with api.operator(geom, fmt="csr", shards=4, shard_workers=1) as op:
            top = op.topology()
            assert top["mode"] == "serial"
            assert top["num_shards"] == 4
            assert sum(s["nnz"] for s in top["shards"]) == op.fmt.nnz
            assert top["shards"][0]["views"][0] == 0


# --------------------------------------------------------------------- #
# distributed execution (spawned worker pool)


class TestDistributed:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bitwise_identical_to_serial(self, geom, workers):
        """forward / adjoint / SpMM across REPRO_SHARD_WORKERS in
        {1, 2, 4}: every worker count reproduces the serial bits."""
        prev = config.runtime.shard_workers
        config.runtime.shard_workers = 1
        try:
            serial = api.operator(geom, fmt="csr", shards=4)
            x, X, y = _operands(serial)
            fx, fX, ay = (serial.forward(x), serial.forward(X),
                          serial.adjoint(y))
            config.runtime.shard_workers = workers  # the env-backed knob
            with api.operator(geom, fmt="csr", shards=4) as op:
                assert op.workers == workers
                assert np.array_equal(op.forward(x), fx)
                assert np.array_equal(op.forward(X), fX)
                assert np.array_equal(op.adjoint(y), ay)
                assert op.topology()["mode"] == "distributed"
        finally:
            config.runtime.shard_workers = prev

    def test_uneven_split_identical(self, geom):
        """Shards that divide neither the views nor the worker count."""
        with api.operator(geom, fmt="csr", shards=3,
                          shard_workers=1) as serial, \
                api.operator(geom, fmt="csr", shards=3,
                             shard_workers=2) as op:
            assert [s.num_views for s in op.shards] != []
            x, X, y = _operands(serial)
            assert np.array_equal(op.forward(x), serial.forward(x))
            assert np.array_equal(op.adjoint(y), serial.adjoint(y))


# --------------------------------------------------------------------- #
# fault injection / degradation


class TestChaos:
    def test_worker_death_degrades_to_identical_serial(self, geom):
        with api.operator(geom, fmt="csr", shards=4,
                          shard_workers=1) as serial:
            x, X, _ = _operands(serial)
            fx, fX = serial.forward(x), serial.forward(X)
        # every task hard-exits: spawn -> die -> respawn -> die -> degrade
        with faults.inject("dist.worker.task:exit:every=1"):
            with api.operator(geom, fmt="csr", shards=4,
                              shard_workers=2) as op:
                with pytest.warns(RuntimeWarning, match="degraded"):
                    out = op.forward(x)
                assert np.array_equal(out, fx)
                assert op.topology()["mode"] == "degraded"
                # later dispatches stay serial, still identical
                assert np.array_equal(op.forward(X), fX)

    def test_single_death_respawns_and_stays_distributed(self, geom):
        with api.operator(geom, fmt="csr", shards=4,
                          shard_workers=1) as serial:
            x, X, _ = _operands(serial)
            fx, fX = serial.forward(x), serial.forward(X)
        # fault state is per-process: every worker dies on its 2nd task,
        # and its respawn (a fresh process, count reset) takes the retry
        with faults.inject("dist.worker.task:exit:every=2"):
            with api.operator(geom, fmt="csr", shards=4,
                              shard_workers=2) as op:
                assert np.array_equal(op.forward(x), fx)    # task 1: clean
                assert np.array_equal(op.forward(X), fX)    # task 2: dies
                assert op.topology()["mode"] == "distributed"
