"""Tests for the three projectors: pixel-driven, strip-area, Siddon."""

import numpy as np
import pytest

from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.phantom import disk_phantom, disk_sinogram_exact
from repro.geometry.projector_pixel import (
    pixel_driven_matrix,
    pixel_driven_view,
    theoretical_nnz,
)
from repro.geometry.projector_siddon import siddon_matrix
from repro.geometry.projector_strip import (
    _trapezoid_cdf,
    footprint_halfwidth,
    strip_area_matrix,
    strip_area_view,
)


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry.for_image(16, num_views=24)


def _dense(shape, rows, cols, vals):
    d = np.zeros(shape)
    np.add.at(d, (rows, cols), vals)
    return d


class TestTrapezoidCdf:
    def test_monotone_and_normalised(self):
        t = np.linspace(-2, 2, 101)
        cdf = _trapezoid_cdf(t, np.float64(0.3), np.float64(0.8))
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == 0.0 and cdf[-1] == pytest.approx(1.0)

    def test_symmetry(self):
        c1 = _trapezoid_cdf(np.array([-0.4]), np.float64(0.2), np.float64(0.9))
        c2 = _trapezoid_cdf(np.array([0.4]), np.float64(0.2), np.float64(0.9))
        assert float(c1[0] + c2[0]) == pytest.approx(1.0)

    def test_degenerate_box(self):
        # r1 == r2 -> box function; CDF at centre is 1/2
        c = _trapezoid_cdf(np.array([0.0]), np.float64(0.5), np.float64(0.5))
        assert float(c[0]) == pytest.approx(0.5)


class TestPixelDriven:
    def test_nnz_bound(self, geom):
        rows, cols, vals = pixel_driven_matrix(geom)
        assert rows.size <= theoretical_nnz(geom)
        assert np.all(vals > 0)

    def test_column_mass_is_path_length(self, geom):
        # interpolation weights sum to pixel_size per (pixel, view) when
        # both target bins are inside the detector
        rows, cols, vals = pixel_driven_view(geom, 3)
        p = geom.pixel_index(8, 8)  # centre pixel, always inside
        mass = vals[cols == p].sum()
        assert mass == pytest.approx(geom.pixel_size)

    def test_rows_within_view(self, geom):
        rows, cols, vals = pixel_driven_view(geom, 5)
        v = rows // geom.num_bins
        assert np.all(v == 5)

    def test_view_out_of_range(self, geom):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            pixel_driven_view(geom, geom.num_views)


class TestStripArea:
    def test_column_mass_conserved(self, geom):
        # total strip weight of an interior pixel = pixel area / bin spacing
        rows, cols, vals = strip_area_view(geom, 7)
        p = geom.pixel_index(8, 8)
        mass = vals[cols == p].sum()
        assert mass == pytest.approx(geom.pixel_size**2 / geom.bin_spacing, rel=1e-9)

    def test_full_matrix_positive(self, geom):
        rows, cols, vals = strip_area_matrix(geom)
        assert np.all(vals > 0)
        assert rows.size > geom.num_pixels * geom.num_views  # >1 bin per pixel/view

    def test_density_close_to_paper(self):
        # paper Table II density ~2.6 nnz per (pixel, view)
        g = ParallelBeamGeometry.for_image(32, num_views=64)
        rows, cols, vals = strip_area_matrix(g)
        density = rows.size / (g.num_pixels * g.num_views)
        assert 1.8 < density < 3.2

    def test_footprint_halfwidth_range(self, geom):
        w0 = footprint_halfwidth(geom, 0)
        assert w0 == pytest.approx(0.5)  # axis-aligned: half a pixel
        ws = [footprint_halfwidth(geom, v) for v in range(geom.num_views)]
        assert max(ws) <= np.sqrt(2) / 2 + 1e-12

    def test_bins_contiguous_per_pixel_view(self, geom):
        # P2: the strip footprint covers one closed bin interval
        rows, cols, vals = strip_area_view(geom, 9)
        p = geom.pixel_index(4, 11)
        bins = np.sort(rows[cols == p] % geom.num_bins)
        if bins.size > 1:
            assert np.all(np.diff(bins) == 1)


class TestSiddon:
    def test_ray_through_center_row(self):
        g = ParallelBeamGeometry(image_size=5, num_bins=7, num_views=1, delta_angle_deg=1.0)
        rows, cols, vals = siddon_matrix(g)
        # view 0: rays are vertical lines (direction (0, 1)); a ray crossing
        # the grid interior intersects exactly image_size pixels, each with
        # length pixel_size
        mid_bin = 3  # s = 0.5 - offset... choose bin covering x=0
        rays = rows % g.num_bins
        inside = vals[(rays == mid_bin)]
        assert inside.size == 5
        assert np.allclose(inside, 1.0)

    def test_total_mass_equals_area_at_any_view(self):
        # sum of all intersection lengths over one view = image area / ds
        # when the detector covers the full image
        g = ParallelBeamGeometry.for_image(8, num_views=4)
        rows, cols, vals = siddon_matrix(g)
        for v in range(g.num_views):
            mask = (rows // g.num_bins) == v
            # rays sample bin centres; edge slivers cost <1% of mass
            assert vals[mask].sum() == pytest.approx(8 * 8 * 1.0, rel=0.01)

    def test_agrees_with_strip_on_disk(self):
        # both discretisations must produce sinograms close to the exact
        # disk projection (and hence to each other)
        g = ParallelBeamGeometry.for_image(24, num_views=12)
        img = disk_phantom(24, radius_frac=0.5).ravel()
        exact = disk_sinogram_exact(
            g.num_bins, g.num_views, radius=0.5 * 12, bin_spacing=g.bin_spacing
        )
        for builder in (siddon_matrix, strip_area_matrix):
            rows, cols, vals = builder(g)
            y = _dense(g.shape, rows, cols, vals) @ img
            err = np.linalg.norm(y - exact) / np.linalg.norm(exact)
            assert err < 0.08, builder.__name__


class TestProjectorCrossValidation:
    def test_pixel_vs_strip_sinograms_close(self, geom):
        img = disk_phantom(geom.image_size, radius_frac=0.45).ravel()
        ys = []
        for builder in (pixel_driven_matrix, strip_area_matrix):
            rows, cols, vals = builder(geom)
            ys.append(_dense(geom.shape, rows, cols, vals) @ img)
        rel = np.linalg.norm(ys[0] - ys[1]) / np.linalg.norm(ys[1])
        assert rel < 0.15
