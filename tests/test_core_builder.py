"""Tests for the vectorised CSCV builder: structure and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.core.builder import build_cscv
from repro.core.params import CSCVParams
from repro.errors import FormatError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse.coo import COOMatrix


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry.for_image(24, num_views=32)


@pytest.fixture(scope="module")
def triplets(geom):
    rows, cols, vals = strip_area_matrix(geom)
    coo = COOMatrix.from_coo(geom.shape, rows, cols, vals)
    return coo


@pytest.fixture(scope="module")
def data(triplets, geom):
    return build_cscv(
        triplets.rows, triplets.cols, triplets.vals, geom, CSCVParams(8, 8, 2)
    )


class TestStructuralInvariants:
    def test_counts_consistent(self, data):
        assert data.blk_vxg_ptr[-1] == data.num_vxg
        assert data.blk_e_ptr[-1] == data.num_cscve
        assert data.voff[-1] == data.nnz
        assert data.packed.size == data.nnz
        assert data.values.size == data.num_vxg * data.params.vxg_len

    def test_slots_at_least_nnz(self, data):
        assert data.stored_slots >= data.nnz
        assert data.r_nnze >= 0.0

    def test_nonzero_slot_count_matches_nnz(self, data):
        assert np.count_nonzero(data.values) <= data.nnz  # exact values may be 0

    def test_masks_popcount_equals_fill(self, data):
        pops = np.array([bin(int(m)).count("1") for m in data.masks])
        np.testing.assert_array_equal(pops, np.diff(data.voff))

    def test_vxg_within_block_ysize(self, data):
        ysz = np.repeat(data.blk_ysize, np.diff(data.blk_vxg_ptr))
        assert np.all(data.vxg_start.astype(np.int64) + data.params.vxg_len <= ysz)

    def test_cscve_within_block_ysize(self, data):
        ysz = np.repeat(data.blk_ysize, np.diff(data.blk_e_ptr))
        assert np.all(data.e_start.astype(np.int64) + data.params.s_vvec <= ysz)

    def test_map_sizes(self, data):
        assert data.ymap.size == int(data.blk_ysize.sum())
        assert data.blk_map_ptr[-1] == data.ymap.size

    def test_map_injective_per_block(self, data):
        for b in range(data.num_blocks):
            seg = data.ymap[data.blk_map_ptr[b] : data.blk_map_ptr[b + 1]]
            valid = seg[seg >= 0]
            assert valid.size == np.unique(valid).size

    def test_vxg_masks_alignment(self, data):
        assert data.vxg_masks.size == data.num_vxg * data.params.s_vxg
        # total popcount over the VxG grid equals nnz
        pops = sum(bin(int(m)).count("1") for m in data.vxg_masks)
        assert pops == data.nnz

    def test_vxg_voff_monotone(self, data):
        assert np.all(np.diff(data.vxg_voff) >= 0)

    def test_present_blocks_sorted_unique(self, data):
        pb = data.present_blocks
        assert np.all(np.diff(pb) > 0)


class TestDensification:
    def test_dense_equals_coo(self, triplets, geom):
        from repro.core.format_z import CSCVZMatrix
        from repro.core.format_m import CSCVMMatrix

        data = build_cscv(
            triplets.rows, triplets.cols, triplets.vals, geom, CSCVParams(4, 8, 2)
        )
        ref = triplets.to_dense()
        np.testing.assert_allclose(CSCVZMatrix(data).to_dense(), ref, rtol=1e-12)
        np.testing.assert_allclose(CSCVMMatrix(data).to_dense(), ref, rtol=1e-12)


class TestParameterEffects:
    @pytest.mark.parametrize("s_vxg", [1, 2, 4])
    def test_rnnze_grows_with_vxg(self, triplets, geom, s_vxg):
        data = build_cscv(
            triplets.rows, triplets.cols, triplets.vals, geom,
            CSCVParams(8, 8, s_vxg),
        )
        # anchored windows: padding can only grow with the window size
        assert data.r_nnze >= 0

    def test_rnnze_monotone_in_s_imgb(self, triplets, geom):
        rs = []
        for s_imgb in (4, 8, 16):
            data = build_cscv(
                triplets.rows, triplets.cols, triplets.vals, geom,
                CSCVParams(8, s_imgb, 1),
            )
            rs.append(data.r_nnze)
        assert rs[0] <= rs[1] <= rs[2]

    def test_rnnze_monotone_in_s_vvec(self, triplets, geom):
        rs = []
        for s_vvec in (4, 8, 16):
            data = build_cscv(
                triplets.rows, triplets.cols, triplets.vals, geom,
                CSCVParams(s_vvec, 8, 1),
            )
            rs.append(data.r_nnze)
        assert rs[0] <= rs[1] <= rs[2]

    def test_svxg1_no_window_padding(self, triplets, geom):
        # with S_VxG=1, VxG slots equal CSCVE slots exactly
        data = build_cscv(
            triplets.rows, triplets.cols, triplets.vals, geom, CSCVParams(8, 8, 1)
        )
        assert data.num_vxg == data.num_cscve
        assert data.stored_slots == data.num_cscve * 8


class TestEdgeCases:
    def test_empty_matrix(self, geom):
        z = np.zeros(0, dtype=np.int64)
        data = build_cscv(z, z, np.zeros(0), geom, CSCVParams(8, 8, 2))
        assert data.nnz == 0 and data.num_vxg == 0 and data.num_blocks == 0

    def test_single_nonzero(self, geom):
        data = build_cscv(
            np.array([geom.row_index(3, 10)]),
            np.array([geom.pixel_index(5, 5)]),
            np.array([2.5]),
            geom,
            CSCVParams(8, 8, 2),
        )
        assert data.nnz == 1
        assert data.num_blocks == 1
        assert data.values.sum() == pytest.approx(2.5)

    def test_duplicate_rejected(self, geom):
        r = np.array([5, 5])
        c = np.array([7, 7])
        with pytest.raises(FormatError):
            build_cscv(r, c, np.ones(2), geom, CSCVParams(8, 8, 2))

    def test_mismatched_shapes_rejected(self, geom):
        with pytest.raises(FormatError):
            build_cscv(np.zeros(2, dtype=np.int64), np.zeros(1, dtype=np.int64),
                       np.ones(2), geom, CSCVParams())

    def test_paranoid_mode(self, triplets, geom):
        prev = config.runtime.paranoid_checks
        config.runtime.paranoid_checks = True
        try:
            build_cscv(
                triplets.rows, triplets.cols, triplets.vals, geom, CSCVParams(8, 8, 2)
            )
        finally:
            config.runtime.paranoid_checks = prev


@settings(max_examples=20, deadline=None)
@given(
    s_vvec=st.sampled_from([2, 4, 8, 16]),
    s_imgb=st.sampled_from([3, 5, 8]),
    s_vxg=st.sampled_from([1, 2, 3]),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_builder_roundtrip(s_vvec, s_imgb, s_vxg, seed):
    """Random nonzero subsets of a CT matrix: CSCV == COO after round trip."""
    geom = ParallelBeamGeometry(image_size=12, num_bins=19, num_views=10,
                                delta_angle_deg=7.0)
    rows_f, cols_f, vals_f = strip_area_matrix(geom)
    rng = np.random.default_rng(seed)
    keep = rng.random(rows_f.size) < 0.4
    coo = COOMatrix.from_coo(geom.shape, rows_f[keep], cols_f[keep], vals_f[keep])
    if coo.nnz == 0:
        return
    data = build_cscv(coo.rows, coo.cols, coo.vals, geom,
                      CSCVParams(s_vvec, s_imgb, s_vxg))
    from repro.core.format_z import CSCVZMatrix

    np.testing.assert_allclose(CSCVZMatrix(data).to_dense(), coo.to_dense(),
                               rtol=1e-12, atol=1e-12)
