"""Tests for perf accounting (repro.obs.perf), the live metrics runtime
(repro.obs.runtime) and the benchmark trajectory harness
(repro.bench.trajectory)."""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro import config, obs
from repro.bench import trajectory
from repro.bench.build import BUILD_BENCH_SCHEMA, BuildBenchRecord, save_records
from repro.obs import perf
from repro.obs import runtime as obs_runtime


@pytest.fixture
def clean_metrics():
    obs.registry.reset()
    yield obs.registry
    obs.registry.reset()


@pytest.fixture
def perf_off():
    """Guarantee accounting state is restored after the test."""
    prev = perf.active
    yield
    perf.active = prev


@pytest.fixture
def stream_cache(tmp_path, monkeypatch):
    """Isolate the per-host STREAM cache (disk + in-process)."""
    monkeypatch.setattr(config, "cache_root", lambda: str(tmp_path))
    prev = perf._stream_gbs
    perf._reset_stream_cache()
    yield tmp_path
    perf._stream_gbs = prev


@pytest.fixture
def cscv_data(small_ct_f32):
    from repro.core.builder import build_cscv
    from repro.core.params import CSCVParams

    coo, geom = small_ct_f32
    return build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 16, 2))


# ---------------------------------------------------------------------- #
# bytes-moved models


class TestBytesModels:
    def test_cscv_z_layout_accounting(self, cscv_data):
        m, n = cscv_data.shape
        item = cscv_data.dtype.itemsize
        b = perf.cscv_z_bytes(cscv_data)
        assert b["written"] == m * item
        assert b["total"] == b["read"] + b["written"]
        # the padded value stream alone dominates nnz * itemsize
        assert b["read"] >= cscv_data.nnz * item + n * item

    def test_cscv_m_removes_padding(self, cscv_data):
        z = perf.cscv_z_bytes(cscv_data)
        mm = perf.cscv_m_bytes(cscv_data)
        # M pays masks + voffs but drops the padding zeros; on a padded
        # matrix the value-stream saving is the paper's whole point
        padding = cscv_data.values.nbytes - cscv_data.packed.nbytes
        assert padding > 0
        assert mm["read"] < z["read"] + cscv_data.vxg_voff.nbytes
        assert mm["written"] == z["written"]

    def test_batch_width_scales_vectors_only(self, cscv_data):
        b1 = perf.cscv_z_bytes(cscv_data, 1)
        b8 = perf.cscv_z_bytes(cscv_data, 8)
        m, n = cscv_data.shape
        item = cscv_data.dtype.itemsize
        assert b8["written"] == 8 * b1["written"]
        assert b8["read"] - b1["read"] == pytest.approx(7 * n * item)

    def test_format_bytes_matches_m_rit(self, small_ct_f32):
        from repro.sparse.csr import CSRMatrix
        from repro.sparse.stats import memory_requirement

        coo, _ = small_ct_f32
        fmt = CSRMatrix.from_coo_matrix(coo)
        b = perf.format_bytes(fmt)
        assert b["total"] == pytest.approx(memory_requirement(fmt)["M_rit"])


# ---------------------------------------------------------------------- #
# dispatch recording


class TestRecordDispatch:
    def test_emits_tagged_histograms_and_counters(self, clean_metrics,
                                                  stream_cache):
        perf.record_dispatch("spmv", "z", "c", seconds=1e-3,
                             bytes_read=1e6, bytes_written=1e5, nnz=1000)
        h = obs.registry.get("spmv.achieved_gbs.z.c")
        assert h.count == 1
        assert h.mean == pytest.approx(1.1e6 / 1e-3 / 1e9)
        assert obs.registry.get("spmv.nnz_per_s.z").count == 1
        assert obs.registry.get("perf.bytes_read").value == 1e6
        assert obs.registry.get("perf.bytes_written").value == 1e5

    def test_stream_fraction_skipped_until_calibrated(self, clean_metrics,
                                                      stream_cache):
        perf.record_dispatch("spmv", "z", "c", seconds=1e-3,
                             bytes_read=1e6, bytes_written=0, nnz=10)
        assert "spmv.stream_fraction.z" not in obs.registry.names()
        assert obs.registry.get("perf.stream_bw.unavailable").value == 1

    def test_stream_fraction_with_cached_bandwidth(self, clean_metrics,
                                                   stream_cache):
        perf._stream_gbs = 10.0
        perf.record_dispatch("spmv", "z", "c", seconds=1e-3,
                             bytes_read=1e7, bytes_written=0, nnz=10)
        frac = obs.registry.get("spmv.stream_fraction.z")
        assert frac.count == 1
        assert frac.mean == pytest.approx((1e7 / 1e-3 / 1e9) / 10.0)

    def test_nonpositive_seconds_is_dropped(self, clean_metrics, stream_cache):
        perf.record_dispatch("spmv", "z", "c", seconds=0.0,
                             bytes_read=1e6, bytes_written=0, nnz=10)
        assert not obs.registry.names()

    def test_record_cscv_uses_layout_bytes(self, clean_metrics, stream_cache,
                                           cscv_data):
        perf.record_cscv("spmm", "m", "flat", cscv_data, 1e-3, k=4)
        h = obs.registry.get("spmm.achieved_gbs.m.flat")
        expect = perf.cscv_m_bytes(cscv_data, 4)["total"] / 1e-3 / 1e9
        assert h.mean == pytest.approx(expect)

    def test_record_build(self, clean_metrics):
        perf.record_build(seconds=0.5, bytes_written=5e8, nnz=1_000_000)
        assert obs.registry.get("build.achieved_gbs").mean == pytest.approx(1.0)
        assert obs.registry.get("build.nnz_per_s").mean == pytest.approx(2e6)


class TestOffByDefault:
    def test_accounting_is_off_by_default(self):
        # a fresh interpreter, not this suite's (other tests legitimately
        # toggle tracing, which drags perf accounting along)
        import subprocess
        import sys

        subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import perf; assert perf.active is False"],
            check=True,
        )

    def test_dispatch_sites_stay_silent_when_off(self, clean_metrics,
                                                 perf_off, small_ct_f32):
        from repro.core.format_z import CSCVZMatrix

        perf.disable()
        coo, geom = small_ct_f32
        a = CSCVZMatrix.from_ct(coo, geom)
        x = np.ones(coo.shape[1], dtype=np.float32)
        y = np.zeros(coo.shape[0], dtype=np.float32)
        a.spmv_into(x, y)
        assert not [n for n in obs.registry.names()
                    if "achieved_gbs" in n or "stream_fraction" in n]

    def test_dispatch_sites_record_when_on(self, clean_metrics, perf_off,
                                           stream_cache, small_ct_f32):
        from repro.core.format_z import CSCVZMatrix

        perf.enable()
        coo, geom = small_ct_f32
        a = CSCVZMatrix.from_ct(coo, geom)
        x = np.ones(coo.shape[1], dtype=np.float32)
        y = np.zeros(coo.shape[0], dtype=np.float32)
        a.spmv_into(x, y)
        names = [n for n in obs.registry.names()
                 if n.startswith("spmv.achieved_gbs.z.")]
        assert names and obs.registry.get(names[0]).count == 1


class TestConvergenceMeter:
    def test_slope_and_tolerance(self, clean_metrics):
        meter = perf.ConvergenceMeter("sirt", y_norm=10.0, rtol=1e-2)
        residuals = [1.0, 0.5, 0.25, 0.05]
        for k, r in enumerate(residuals):
            meter.observe(k, r, seconds=1e-3)
        slope = obs.registry.get("sirt.residual_slope").value
        assert slope < 0  # converging
        # r/y_norm = 0.005 < 1e-2 first at k=3 -> iters_to_tol = 4
        assert obs.registry.get("sirt.iters_to_tol").value == 4
        assert obs.registry.get("sirt.iter_seconds").count == 4

    def test_no_seconds_means_no_histogram(self, clean_metrics):
        meter = perf.ConvergenceMeter("cgls")
        meter.observe(0, 1.0)
        meter.observe(1, 0.9)
        assert "cgls.iter_seconds" not in obs.registry.names()
        assert "cgls.residual_slope" in obs.registry.names()


# ---------------------------------------------------------------------- #
# STREAM bandwidth cache


class TestStreamBandwidthCache:
    def test_hot_path_never_measures(self, stream_cache):
        assert perf.stream_bandwidth() is None

    def test_measure_persists_and_reloads(self, stream_cache):
        gbs = perf.stream_bandwidth(measure=True, size_mb=8)
        assert gbs and gbs > 0
        path = stream_cache / "stream_bw.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload[perf.host_fingerprint()]["gbs"] == pytest.approx(gbs)
        # a fresh process (simulated by dropping the in-process cache)
        # reads the disk cache instead of re-measuring
        perf._reset_stream_cache()
        assert perf.stream_bandwidth() == pytest.approx(gbs)

    def test_corrupt_disk_cache_is_ignored(self, stream_cache):
        (stream_cache / "stream_bw.json").write_text("{not json")
        assert perf.stream_bandwidth() is None


# ---------------------------------------------------------------------- #
# live metrics runtime


class TestMetricsRuntime:
    def _get(self, port, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5
        ) as resp:
            return resp.status, resp.read().decode("utf-8")

    def test_http_exporter_serves_live_registry(self, clean_metrics, perf_off,
                                                stream_cache, small_ct_f32):
        from repro.core.format_z import CSCVZMatrix

        port = obs.start_metrics_runtime(port=0)
        try:
            assert port and obs.metrics_runtime_active()
            assert perf.is_active()  # runtime start enables accounting
            coo, geom = small_ct_f32
            a = CSCVZMatrix.from_ct(coo, geom)
            x = np.ones(coo.shape[1], dtype=np.float32)
            y = np.zeros(coo.shape[0], dtype=np.float32)
            a.spmv_into(x, y)
            status, body = self._get(port, "/metrics")
            assert status == 200
            assert "repro_spmv_achieved_gbs" in body
            status, body = self._get(port, "/healthz")
            assert status == 200 and body == "ok\n"
            with pytest.raises(urllib.error.HTTPError):
                self._get(port, "/nope")
        finally:
            obs.stop_metrics_runtime()
        assert not obs.metrics_runtime_active()
        assert not perf.is_active()  # tracer off -> accounting off again

    def test_start_is_idempotent(self, perf_off):
        p1 = obs_runtime.start(port=0)
        p2 = obs_runtime.start(port=0)
        try:
            assert p1 == p2 == obs_runtime.server_port()
        finally:
            obs_runtime.stop()

    def test_flusher_appends_jsonl_and_final_flush(self, clean_metrics,
                                                   tmp_path):
        obs.counter("t.flush").inc(3)
        path = tmp_path / "metrics.jsonl"
        f = obs_runtime.MetricsFlusher(str(path), interval=0.05)
        time.sleep(0.2)
        f.stop()  # also flushes a final line
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert len(lines) >= 2
        assert all("ts" in d and d["metrics"]["t.flush"]["value"] == 3
                   for d in lines)

    def test_flusher_skips_empty_registry(self, clean_metrics, tmp_path):
        path = tmp_path / "empty.jsonl"
        f = obs_runtime.MetricsFlusher(str(path), interval=60.0)
        f.stop()
        assert not path.exists()

    def test_flusher_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            obs_runtime.MetricsFlusher(str(tmp_path / "x.jsonl"), interval=0)

    def test_status_reports_runtime_fields(self):
        st = obs.status()
        assert {"perf_accounting", "metrics_runtime", "metrics_port"} <= set(st)

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        assert config.env_metrics_port() is None
        monkeypatch.setenv("REPRO_METRICS_PORT", "off")
        assert config.env_metrics_port() is None
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        assert config.env_metrics_port() == 0
        monkeypatch.setenv("REPRO_METRICS_PORT", "9464")
        assert config.env_metrics_port() == 9464
        monkeypatch.setenv("REPRO_METRICS_PORT", "70000")
        with pytest.raises(ValueError):
            config.env_metrics_port()
        monkeypatch.delenv("REPRO_METRICS_FLUSH", raising=False)
        monkeypatch.delenv("REPRO_METRICS_FLUSH_SEC", raising=False)
        assert config.env_metrics_flush() == (None, config.DEFAULT_METRICS_FLUSH_SEC)
        monkeypatch.setenv("REPRO_METRICS_FLUSH", "/tmp/m.jsonl")
        monkeypatch.setenv("REPRO_METRICS_FLUSH_SEC", "2.5")
        assert config.env_metrics_flush() == ("/tmp/m.jsonl", 2.5)
        monkeypatch.setenv("REPRO_METRICS_FLUSH_SEC", "0")
        with pytest.raises(ValueError):
            config.env_metrics_flush()


# ---------------------------------------------------------------------- #
# trajectory harness


def _point(seconds_by_case, *, noise=0.02, rev="abc1234"):
    return {
        "schema": trajectory.TRAJECTORY_SCHEMA,
        "git_rev": rev,
        "abi": 5,
        "backend": "c",
        "quick": True,
        "host": {"fingerprint": "h", "cpu_count": 1, "stream_gbs": 8.0},
        "cases": [
            {"case": name, "kind": "spmv", "format": "csr", "size": 32,
             "batch": 1, "seconds": s, "mean_seconds": s,
             "noise": noise, "gflops": 1.0, "achieved_gbs": 1.0,
             "r_em": 0.1, "nnz": 100}
            for name, s in seconds_by_case.items()
        ],
    }


class TestTrajectory:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "traj.json")
        assert trajectory.load_trajectory(path)["points"] == []
        trajectory.append_point(_point({"a": 1.0}), path)
        trajectory.append_point(_point({"a": 1.1}, rev="def5678"), path)
        payload = trajectory.load_trajectory(path)
        assert len(payload["points"]) == 2
        assert payload["points"][1]["git_rev"] == "def5678"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"bench": "build"}')
        with pytest.raises(ValueError):
            trajectory.load_trajectory(str(path))

    def test_compare_detects_2x_slowdown(self):
        old = _point({"spmv/csr/32": 1.0, "spmm/csr/32": 1.0})
        new = _point({"spmv/csr/32": 2.0, "spmm/csr/32": 1.02})
        by_case = {r["case"]: r for r in trajectory.compare_points(old, new)}
        assert by_case["spmv/csr/32"]["status"] == "regression"
        assert by_case["spmm/csr/32"]["status"] == "ok"

    def test_slack_cap_keeps_2x_visible_on_noisy_hosts(self):
        # 107% run-to-run noise was observed on 1-core CI VMs; the cap
        # must still flag a genuine 2x slowdown
        old = _point({"a": 1.0}, noise=1.07)
        new = _point({"a": 2.0}, noise=1.07)
        (r,) = trajectory.compare_points(old, new)
        assert r["slack"] == trajectory.MAX_SLACK == 0.90
        assert r["status"] == "regression"

    def test_noise_widens_slack(self):
        old = _point({"a": 1.0}, noise=0.10)
        new = _point({"a": 1.3}, noise=0.10)
        (r,) = trajectory.compare_points(old, new)
        # 4 * 10% = 40% slack: a 1.3x ratio is noise, not regression
        assert r["slack"] == pytest.approx(0.40)
        assert r["status"] == "ok"

    def test_improvement_and_membership_statuses(self):
        old = _point({"a": 1.0, "gone": 1.0})
        new = _point({"a": 0.4, "fresh": 1.0})
        by_case = {r["case"]: r for r in trajectory.compare_points(old, new)}
        assert by_case["a"]["status"] == "improved"
        assert by_case["gone"]["status"] == "missing"
        assert by_case["fresh"]["status"] == "new"

    def test_render_helpers(self):
        old = _point({"a": 1.0})
        new = _point({"a": 2.0})
        assert "a" in trajectory.render_point(old)
        out = trajectory.render_compare(trajectory.compare_points(old, new))
        assert "regression" in out

    def test_compare_cli_exit_codes(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        trajectory.append_point(_point({"a": 1.0}))
        assert main(["bench", "compare"]) == 2  # needs two points
        trajectory.append_point(_point({"a": 2.0}, rev="def5678"))
        assert main(["bench", "compare"]) == 1
        assert main(["bench", "compare", "--report-only"]) == 0
        err = capsys.readouterr().err
        assert "regression" in err


# ---------------------------------------------------------------------- #
# bench build persistence


class TestBuildSaveRecords:
    def _rec(self, workers):
        return BuildBenchRecord(
            projector="strip", size=32, workers=workers, backend="c",
            sweep_seconds=0.1, pack_seconds=0.2, total_seconds=0.3,
            nnz=1000, checksum=1.5,
        )

    def test_append_is_default_and_schema_tagged(self, tmp_path):
        path = str(tmp_path / "BENCH_build.json")
        save_records([self._rec(1)], path)
        save_records([self._rec(4)], path)
        payload = json.loads(open(path).read())
        assert payload["bench"] == "build"
        assert [r["workers"] for r in payload["records"]] == [1, 4]
        for r in payload["records"]:
            assert r["schema"] == BUILD_BENCH_SCHEMA
            assert "host" in r and "git_rev" in r and "timestamp" in r

    def test_fresh_truncates(self, tmp_path):
        path = str(tmp_path / "BENCH_build.json")
        save_records([self._rec(1)], path)
        save_records([self._rec(2)], path, fresh=True)
        payload = json.loads(open(path).read())
        assert [r["workers"] for r in payload["records"]] == [2]

    def test_foreign_file_is_not_absorbed(self, tmp_path):
        path = tmp_path / "BENCH_build.json"
        path.write_text('{"bench": "trajectory", "points": []}')
        save_records([self._rec(1)], str(path))
        payload = json.loads(path.read_text())
        assert payload["bench"] == "build"
        assert len(payload["records"]) == 1
