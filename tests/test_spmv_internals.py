"""Tests for the SpMV driver internals and the C transpose kernel."""

import numpy as np
import pytest

from repro import config
from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.core.spmv import (
    _mask_lanes,
    resolve_flat_rows_m,
    resolve_flat_rows_z,
)
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse.coo import COOMatrix


@pytest.fixture(scope="module")
def data():
    geom = ParallelBeamGeometry.for_image(20, num_views=24)
    rows, cols, vals = strip_area_matrix(geom)
    coo = COOMatrix.from_coo(geom.shape, rows, cols, vals)
    return build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 5, 2)), coo


class TestMaskLanes:
    def test_simple_masks(self):
        masks = np.array([0b1011, 0b0100], dtype=np.uint32)
        lanes = _mask_lanes(masks, 4)
        np.testing.assert_array_equal(lanes, [0, 1, 3, 2])

    def test_empty(self):
        assert _mask_lanes(np.zeros(0, dtype=np.uint32), 8).size == 0

    def test_full_mask(self):
        lanes = _mask_lanes(np.array([0xFF], dtype=np.uint32), 8)
        np.testing.assert_array_equal(lanes, np.arange(8))

    def test_total_popcount(self, data):
        d, _ = data
        lanes = _mask_lanes(d.masks, d.params.s_vvec)
        assert lanes.size == d.nnz


class TestFlatRows:
    def test_z_rows_cover_all_matrix_rows(self, data):
        d, coo = data
        rows = resolve_flat_rows_z(d)
        assert rows.size == d.stored_slots
        touched = np.unique(rows[rows >= 0])
        expected = np.unique(coo.rows)
        assert set(expected).issubset(set(touched.tolist()))

    def test_m_rows_all_valid(self, data):
        d, coo = data
        rows = resolve_flat_rows_m(d)
        assert rows.size == d.nnz
        assert rows.min() >= 0
        # multiset of rows matches the original COO rows
        np.testing.assert_array_equal(np.sort(rows), np.sort(coo.rows))

    def test_z_valid_slots_hold_values(self, data):
        # every nonzero value sits in a slot with a valid row
        d, _ = data
        rows = resolve_flat_rows_z(d)
        nonzero_slots = d.values != 0
        assert np.all(rows[nonzero_slots] >= 0)


class TestTransposeKernelEquivalence:
    """C tspmv kernel vs NumPy fallback must agree bit-for-bit-ish."""

    @pytest.fixture(scope="class")
    def z(self, fine_ct):
        coo, geom = fine_ct
        return CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 16, 2)), coo

    def test_backends_agree(self, z, rng):
        fmt, coo = z
        y = rng.random(coo.shape[0]).astype(np.float32)
        prev = config.runtime.backend
        try:
            config.runtime.backend = "auto"
            a = fmt.transpose_spmv(y)
            config.runtime.backend = "numpy"
            b = fmt.transpose_spmv(y)
        finally:
            config.runtime.backend = prev
        rel = np.abs(a - b).max() / max(np.abs(b).max(), 1e-30)
        assert rel < 1e-5

    def test_forward_backward_normal_psd(self, z, rng):
        # <A^T A x, x> >= 0 for all x (positive semidefinite normal op)
        fmt, coo = z
        for _ in range(3):
            x = rng.standard_normal(coo.shape[1]).astype(np.float32)
            val = float(x @ fmt.transpose_spmv(fmt.spmv(x)))
            assert val >= -1e-3 * np.abs(x).max() ** 2


class TestDeterminism:
    def test_spmv_bitwise_repeatable(self, data):
        d, coo = data
        z = CSCVZMatrix(d)
        m = CSCVMMatrix(d)
        x = np.linspace(-1, 1, coo.shape[1])
        for fmt in (z, m):
            a = fmt.spmv(x)
            b = fmt.spmv(x)
            np.testing.assert_array_equal(a, b)

    def test_builder_deterministic(self):
        geom = ParallelBeamGeometry.for_image(12, num_views=16)
        rows, cols, vals = strip_area_matrix(geom)
        a = build_cscv(rows, cols, vals, geom, CSCVParams(4, 4, 2))
        b = build_cscv(rows, cols, vals, geom, CSCVParams(4, 4, 2))
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.ymap, b.ymap)


class TestFailureInjection:
    """Corrupted CSCV structures must be caught, not segfault."""

    def test_vxg_overrun_detected(self, data):
        from repro.core.builder import _validate
        from repro.errors import FormatError

        d, _ = data
        import copy

        bad = copy.copy(d)
        bad.vxg_start = d.vxg_start.copy()
        bad.vxg_start[0] = 10**6  # way past any block's ytilde
        with pytest.raises(FormatError):
            _validate(bad)

    def test_packed_count_mismatch_detected(self, data):
        from repro.core.builder import _validate
        from repro.errors import FormatError

        d, _ = data
        import copy

        bad = copy.copy(d)
        bad.voff = d.voff.copy()
        bad.voff[-1] = d.nnz + 5
        with pytest.raises(FormatError):
            _validate(bad)

    def test_map_injectivity_checked_in_paranoid_mode(self, data):
        from repro.core.builder import _validate
        from repro.errors import FormatError

        d, _ = data
        import copy

        bad = copy.copy(d)
        bad.ymap = d.ymap.copy()
        # duplicate one valid target within the first block
        valid_idx = np.flatnonzero(bad.ymap[: bad.blk_map_ptr[1]] >= 0)
        if valid_idx.size >= 2:
            bad.ymap[valid_idx[1]] = bad.ymap[valid_idx[0]]
            prev = config.runtime.paranoid_checks
            config.runtime.paranoid_checks = True
            try:
                with pytest.raises(FormatError):
                    _validate(bad)
            finally:
                config.runtime.paranoid_checks = prev
