"""Tests for the noise model, SpMM, damped CGLS, and the report helpers."""

import numpy as np
import pytest

from repro.api import build_ct_matrix
from repro.bench.harness import PerfRecord
from repro.bench.report import (
    comparison_table,
    ordering_agreement,
    records_vs_paper,
    speedup_lines,
)
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.phantom import disk_phantom
from repro.recon import ProjectionOperator, cgls_reconstruct, relative_error
from repro.recon.noise import (
    add_poisson_noise,
    dose_sweep_snrs,
    log_transform,
    sinogram_snr,
    transmission_counts,
)
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def problem():
    geom = ParallelBeamGeometry.for_image(24, num_views=48)
    coo, geom = build_ct_matrix(24, geom=geom)
    truth = disk_phantom(24, radius_frac=0.5).ravel()
    csr = CSRMatrix.from_coo_matrix(coo)
    sino = csr.spmv(truth)
    return coo, geom, csr, truth, sino


class TestNoise:
    def test_counts_scale_with_dose(self, problem):
        *_, sino = problem
        lo = transmission_counts(sino, i0=1e3, seed=0).mean()
        hi = transmission_counts(sino, i0=1e5, seed=0).mean()
        assert hi > 50 * lo

    def test_log_transform_inverts_expectation(self, problem):
        *_, sino = problem
        # at very high dose the noisy sinogram converges to the clean one
        noisy = add_poisson_noise(sino, i0=1e9, seed=1)
        assert relative_error(noisy, sino) < 0.01

    def test_snr_monotone_in_dose(self, problem):
        *_, sino = problem
        snrs = dose_sweep_snrs(sino, doses=(1e3, 1e4, 1e5))
        vals = [snrs[k] for k in sorted(snrs)]
        assert vals[0] < vals[1] < vals[2]

    def test_zero_counts_clamped(self):
        y = log_transform(np.zeros(4), i0=100.0)
        assert np.all(np.isfinite(y))
        assert np.all(y == pytest.approx(np.log(100.0)))

    def test_validation(self, problem):
        *_, sino = problem
        with pytest.raises(ValidationError):
            transmission_counts(sino, i0=0.0)
        with pytest.raises(ValidationError):
            transmission_counts(-np.ones(3), i0=10.0)
        with pytest.raises(ValidationError):
            sinogram_snr(np.ones(3), np.ones(4))

    def test_snr_infinite_for_identical(self, problem):
        *_, sino = problem
        assert sinogram_snr(sino, sino) == float("inf")

    def test_reconstruction_degrades_gracefully_with_noise(self, problem):
        coo, geom, csr, truth, sino = problem
        op = ProjectionOperator(csr)
        clean = cgls_reconstruct(op, sino, iterations=15)
        noisy = cgls_reconstruct(op, add_poisson_noise(sino, i0=1e4, seed=2),
                                 iterations=15, damping=0.05)
        assert relative_error(clean, truth) < relative_error(noisy, truth) < 0.8


class TestSpMM:
    def test_matches_column_spmv(self, problem, rng):
        coo, geom, csr, *_ = problem
        X = rng.standard_normal((coo.shape[1], 4))
        Y = csr.spmm(X)
        for j in range(4):
            np.testing.assert_allclose(Y[:, j], csr.spmv(X[:, j]), rtol=1e-10)

    def test_cscv_spmm_default_path(self, problem, rng):
        coo, geom, *_ = problem
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        X = rng.standard_normal((coo.shape[1], 3))
        Y = z.spmm(X)
        dense = coo.to_dense()
        np.testing.assert_allclose(Y, dense @ X, rtol=1e-6, atol=1e-8)

    def test_matmul_dispatches_2d(self, problem, rng):
        coo, geom, csr, *_ = problem
        X = rng.standard_normal((coo.shape[1], 2))
        np.testing.assert_allclose(csr @ X, csr.spmm(X))

    def test_shape_validation(self, problem):
        coo, geom, csr, *_ = problem
        with pytest.raises(ValidationError):
            csr.spmm(np.ones((coo.shape[1] + 1, 2)))

    def test_empty_rhs_block(self, problem):
        coo, geom, csr, *_ = problem
        Y = csr.spmm(np.zeros((coo.shape[1], 0)))
        assert Y.shape == (coo.shape[0], 0)


class TestDampedCGLS:
    def test_damping_shrinks_solution_norm(self, problem):
        coo, geom, csr, truth, sino = problem
        op = ProjectionOperator(csr)
        x0 = cgls_reconstruct(op, sino, iterations=20, damping=0.0)
        x1 = cgls_reconstruct(op, sino, iterations=20, damping=10.0)
        assert np.linalg.norm(x1) < np.linalg.norm(x0)

    def test_negative_damping_rejected(self, problem):
        coo, geom, csr, truth, sino = problem
        with pytest.raises(ValidationError):
            cgls_reconstruct(ProjectionOperator(csr), sino, damping=-1.0)


class TestReport:
    def _records(self):
        return [
            PerfRecord("cscv-m", "float32", 0.001, 80.0, 1e6, 10.0, 1000),
            PerfRecord("cscv-z", "float32", 0.001, 60.0, 1e6, 10.0, 1000),
            PerfRecord("mkl-csr", "float32", 0.002, 30.0, 1e6, 10.0, 1000),
            PerfRecord("spc5", "float32", 0.002, 40.0, 1e6, 10.0, 1000),
        ]

    def test_records_vs_paper(self):
        out = records_vs_paper(self._records(), {"cscv-m": 85.5, "mkl-csr": 31.2})
        assert "cscv-m" in out and "85.50" in out

    def test_speedup_lines(self):
        out = speedup_lines(self._records())
        assert "vs MKL-CSR: 2.67x" in out
        assert "second place (spc5): 2.00x" in out

    def test_speedup_lines_no_cscv(self):
        assert "no CSCV" in speedup_lines(
            [PerfRecord("csr", "float32", 1.0, 1.0, 1.0, 1.0, 1)]
        )

    def test_ordering_agreement_perfect(self):
        ours = {"a": 3.0, "b": 2.0, "c": 1.0}
        paper = {"a": 30.0, "b": 20.0, "c": 10.0}
        assert ordering_agreement(ours, paper) == 1.0

    def test_ordering_agreement_partial(self):
        ours = {"a": 1.0, "b": 2.0, "c": 3.0}
        paper = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ordering_agreement(ours, paper) == 0.0

    def test_comparison_table_marks(self):
        out = comparison_table(
            "t", [("x", 1.0), ("y", 5.0)], headers=["n", "v"], mark_columns=(1,)
        )
        assert "5.00*" in out

    def test_model_vs_paper_ordering_agreement(self):
        """The quantitative shape claim: model ordering matches Table IV."""
        from repro.api import build_format
        from repro.bench.datasets import get_dataset
        from repro.bench.experiments.table4 import PAPER_TABLE4, _cscv_params
        from repro.perfmodel import SKL, predict_gflops

        coo, geom = get_dataset("clinical-small").load(dtype=np.float32)
        paper = PAPER_TABLE4[("skl", "single")]
        params = _cscv_params("single")
        ours = {}
        for name in paper:
            fmt = build_format(name, coo, geom=geom, params=params.get(name))
            ours[name] = predict_gflops(fmt, SKL, 64)
        assert ordering_agreement(ours, {k: v[0] for k, v in paper.items()}) >= 0.8
