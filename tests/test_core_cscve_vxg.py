"""Tests for the single-block CSCVE analysis and VxG construction trace."""

import numpy as np
import pytest

from repro.bench.experiments.table1 import sample_block, sample_geometry, sample_params
from repro.core.cscve import (
    column_cscves,
    layout_ascii,
    pixel_stats,
    reference_sweep,
)
from repro.core.vxg import (
    VxGTrace,
    construct_vxgs,
    index_data_ratio,
    order_by_count,
    render_trace,
)
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def geom():
    return sample_geometry()


@pytest.fixture(scope="module")
def block():
    return sample_block()


class TestColumnCSCVEs:
    def test_reference_pixel_dense(self, geom, block):
        cscves = column_cscves(geom, block, block.reference_pixel,
                               block.reference_pixel, 8)
        # reference pixel against itself: offset 0 fully occupied
        assert 0 in cscves
        assert cscves[0].all()

    def test_occupancy_counts_equal_nnz(self, geom, block):
        from repro.geometry.trajectory import pixel_trajectory

        pix = (6, 8)
        views = np.arange(block.v0, block.v1)
        lo, hi = pixel_trajectory(geom, *pix, views, clip=False)
        expected_nnz = int((hi - lo + 1).sum())
        cscves = column_cscves(geom, block, pix, block.reference_pixel, 8)
        assert sum(int(v.sum()) for v in cscves.values()) == expected_nnz

    def test_svvec_too_small_rejected(self, geom, block):
        with pytest.raises(ValidationError):
            column_cscves(geom, block, (6, 6), block.reference_pixel, s_vvec=4)


class TestPixelStats:
    def test_padding_rate_definition(self, geom, block):
        st = pixel_stats(geom, block, (5, 9), block.reference_pixel, 8)
        assert st.padding == st.num_cscve * 8 - st.nnz
        assert st.padding_rate == pytest.approx(st.padding / st.nnz)

    def test_offsets_sorted(self, geom, block):
        st = pixel_stats(geom, block, (9, 5), block.reference_pixel, 8)
        assert list(st.offsets) == sorted(st.offsets)

    def test_reference_pixel_minimal_padding(self, geom, block):
        ref = block.reference_pixel
        st_ref = pixel_stats(geom, block, ref, ref, 8)
        st_far = pixel_stats(geom, block, (block.i0, block.j0), ref, 8)
        assert st_ref.padding_rate <= st_far.padding_rate


class TestReferenceSweep:
    def test_grids_shape(self, geom, block):
        grids = reference_sweep(geom, block, 8)
        shape = (block.i1 - block.i0, block.j1 - block.j0)
        for key in ("padding", "cscve_count", "offset_span"):
            assert grids[key].shape == shape

    def test_center_near_optimal(self):
        from repro.bench.experiments.fig5 import center_is_good_reference

        assert center_is_good_reference()


class TestLayoutAscii:
    def test_contains_markers(self, geom, block):
        art = layout_ascii(geom, block, (7, 7), 8)
        assert "#" in art and "d=" in art


class TestVxGConstruction:
    def test_windows_cover_all_offsets(self):
        offsets = {0: [(3, 5), (4, 8), (6, 2)], 1: [(0, 8), (1, 8)]}
        vxgs = construct_vxgs(offsets, s_vxg=2)
        covered = {
            (g.column, g.d_start + k)
            for g in vxgs
            for k in range(2)
        }
        for col, entries in offsets.items():
            for d, _ in entries:
                assert (col, d) in covered

    def test_extra_padding_marked(self):
        # gap at offset 4 inside the window [3, 5) -> no; window [5,7)?
        offsets = {0: [(3, 5), (6, 2)]}  # anchored windows: [3,5) and [5,7)
        vxgs = construct_vxgs(offsets, s_vxg=2)
        assert any(g.has_extra_padding for g in vxgs)

    def test_contiguous_offsets_no_extra_padding(self):
        offsets = {0: [(2, 8), (3, 7), (4, 8), (5, 6)]}
        vxgs = construct_vxgs(offsets, s_vxg=2)
        assert not any(g.has_extra_padding for g in vxgs)

    def test_nnz_preserved(self):
        offsets = {0: [(1, 4), (2, 5)], 3: [(7, 2)]}
        vxgs = construct_vxgs(offsets, s_vxg=2)
        assert sum(g.nnz for g in vxgs) == 11

    def test_order_by_count_descending(self):
        vxgs = [
            VxGTrace(0, 0, (1, 1), False),
            VxGTrace(0, 2, (8, 8), False),
            VxGTrace(1, 0, (4, 0), True),
        ]
        ordered = order_by_count(vxgs)
        assert [g.nnz for g in ordered] == [16, 4, 2]

    def test_bad_s_vxg(self):
        with pytest.raises(ValidationError):
            construct_vxgs({}, 0)

    def test_render_trace_marks(self):
        out = render_trace([VxGTrace(2, 5, (3, 0), True)])
        assert "extra-padding" in out and "(5,3)" in out


class TestIndexRatio:
    def test_vxg_reduces_index_volume(self):
        r = index_data_ratio(num_vxg=25, num_cscve=100, nnz=800)
        assert r["vs_cscve"] == pytest.approx(0.25)
        assert r["vs_csc"] == pytest.approx(2 * 25 / 800)

    def test_empty(self):
        assert index_data_ratio(0, 0, 0) == {"vs_cscve": 0.0, "vs_csc": 0.0}

    def test_matches_builder_at_scale(self, fine_ct):
        # the ratio computed from real builder output: VxG index volume is
        # ~1/S_VxG of CSCVE-level indexing
        from repro.core.builder import build_cscv
        from repro.core.params import CSCVParams

        coo, geom = fine_ct
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom,
                          CSCVParams(8, 16, 4), np.float32)
        r = index_data_ratio(data.num_vxg, data.num_cscve, data.nnz)
        assert r["vs_cscve"] < 0.6  # S_VxG=4 should roughly quarter it
