"""Tests for the reconstruction application layer."""

import numpy as np
import pytest

from repro.api import build_ct_matrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.phantom import disk_phantom, shepp_logan
from repro.recon import (
    ProjectionOperator,
    art_reconstruct,
    cgls_reconstruct,
    fbp_reconstruct,
    icd_reconstruct,
    kaczmarz_sweep,
    psnr,
    relative_error,
    rmse,
    sirt_reconstruct,
)
from repro.recon.fbp import filter_sinogram, ramp_filter
from repro.recon.icd import icd_single_update
from repro.recon.metrics import correlation
from repro.sparse import CSCMatrix, CSRMatrix


@pytest.fixture(scope="module")
def problem():
    geom = ParallelBeamGeometry.for_image(32, num_views=64)
    coo, geom = build_ct_matrix(32, geom=geom)
    truth = shepp_logan(32).ravel()
    csr = CSRMatrix.from_coo_matrix(coo)
    op = ProjectionOperator(csr)
    sino = op.forward(truth)
    return coo, geom, op, truth, sino


class TestProjectionOperator:
    def test_forward_matches_format(self, problem):
        coo, _, op, truth, _ = problem
        np.testing.assert_allclose(op.forward(truth), coo.to_dense() @ truth)

    def test_adjoint_native(self, problem, rng):
        coo, _, op, _, _ = problem
        y = rng.random(op.shape[0])
        np.testing.assert_allclose(op.adjoint(y), coo.to_dense().T @ y, rtol=1e-10)

    def test_adjoint_fallback_for_formats_without_transpose(self, rng):
        # ELL has no native transpose; the operator must build a fallback
        from repro.sparse import ELLMatrix

        geom = ParallelBeamGeometry.for_image(12, num_views=8)
        coo, geom = build_ct_matrix(12, geom=geom)
        op = ProjectionOperator(ELLMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals))
        y = rng.random(op.shape[0])
        np.testing.assert_allclose(op.adjoint(y), coo.to_dense().T @ y, rtol=1e-9)

    def test_adjoint_identity_cscv(self, rng):
        geom = ParallelBeamGeometry.for_image(16, num_views=32)
        coo, geom = build_ct_matrix(16, geom=geom)
        op = ProjectionOperator(CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2)))
        x = rng.random(op.shape[1])
        y = rng.random(op.shape[0])
        assert float(op.forward(x) @ y) == pytest.approx(float(x @ op.adjoint(y)), rel=1e-9)


class TestSIRT:
    def test_reduces_residual(self, problem):
        _, _, op, truth, sino = problem
        errs = []
        sirt_reconstruct(op, sino, iterations=15,
                         callback=lambda k, x, r: errs.append(r))
        assert errs[-1] < errs[0]

    def test_converges_toward_truth(self, problem):
        _, _, op, truth, sino = problem
        x = sirt_reconstruct(op, sino, iterations=80)
        assert relative_error(x, truth) < 0.35

    def test_nonneg_enforced(self, problem):
        _, _, op, _, sino = problem
        x = sirt_reconstruct(op, sino, iterations=5)
        assert x.min() >= 0

    def test_rtol_early_exit(self, problem):
        _, _, op, _, sino = problem
        count = []
        sirt_reconstruct(op, sino, iterations=100, rtol=0.9,
                         callback=lambda k, x, r: count.append(k))
        assert len(count) < 100

    def test_invalid_args(self, problem):
        from repro.errors import ValidationError

        _, _, op, _, sino = problem
        with pytest.raises(ValidationError):
            sirt_reconstruct(op, sino, iterations=0)
        with pytest.raises(ValidationError):
            sirt_reconstruct(op, sino, relax=5.0)


class TestCGLS:
    def test_beats_sirt_at_equal_iterations(self, problem):
        _, _, op, truth, sino = problem
        x_cgls = cgls_reconstruct(op, sino, iterations=20)
        x_sirt = sirt_reconstruct(op, sino, iterations=20)
        assert relative_error(x_cgls, truth) < relative_error(x_sirt, truth)

    def test_monotone_normal_residual(self, problem):
        _, _, op, _, sino = problem
        norms = []
        cgls_reconstruct(op, sino, iterations=15,
                         callback=lambda k, x, g: norms.append(g))
        assert norms[-1] < norms[0]

    def test_consistent_system_high_accuracy(self):
        # tiny consistent system: CGLS should nearly solve it
        geom = ParallelBeamGeometry.for_image(8, num_views=24)
        coo, geom = build_ct_matrix(8, geom=geom)
        op = ProjectionOperator(CSRMatrix.from_coo_matrix(coo))
        truth = disk_phantom(8, radius_frac=0.6).ravel()
        sino = op.forward(truth)
        x = cgls_reconstruct(op, sino, iterations=60)
        assert relative_error(op.forward(x), sino) < 1e-3


class TestART:
    def test_blocked_art_converges(self, problem):
        _, _, op, truth, sino = problem
        x = art_reconstruct(op, sino, iterations=40, relax=0.9)
        assert relative_error(x, truth) < 0.6

    def test_kaczmarz_sweep_reduces_residual(self, problem, rng):
        coo, _, op, truth, sino = problem
        csr = CSRMatrix.from_coo_matrix(coo)
        x = np.zeros(op.shape[1])
        norms = np.asarray(op.row_norms_sq())
        kaczmarz_sweep(csr, x, sino, norms)
        r_after = np.linalg.norm(sino - op.forward(x))
        assert r_after < np.linalg.norm(sino)


class TestICD:
    @pytest.fixture(scope="class")
    def csc_problem(self):
        geom = ParallelBeamGeometry.for_image(16, num_views=32)
        coo, geom = build_ct_matrix(16, geom=geom)
        truth = disk_phantom(16, radius_frac=0.5).ravel()
        csc = CSCMatrix.from_coo_matrix(coo)
        sino = csc.spmv(truth)
        return csc, truth, sino

    def test_residual_decreases_per_sweep(self, csc_problem):
        csc, truth, sino = csc_problem
        rs = []
        icd_reconstruct(csc, sino, sweeps=4, callback=lambda s, x, r: rs.append(r))
        assert all(b <= a * (1 + 1e-12) for a, b in zip(rs, rs[1:]))

    def test_converges(self, csc_problem):
        csc, truth, sino = csc_problem
        x = icd_reconstruct(csc, sino, sweeps=8)
        assert relative_error(x, truth) < 0.4

    def test_single_update_is_exact_minimiser(self, csc_problem):
        # after updating coordinate j, the residual is orthogonal to a_j
        csc, truth, sino = csc_problem
        x = np.zeros(csc.shape[1])
        r = sino.astype(np.float64).copy()
        norms = np.zeros(csc.shape[1])
        np.add.at(norms, np.repeat(np.arange(csc.shape[1]), np.diff(csc.col_ptr)),
                  csc.vals.astype(np.float64) ** 2)
        j = csc.shape[1] // 2
        icd_single_update(csc, x, r, j, norms)
        a, b = int(csc.col_ptr[j]), int(csc.col_ptr[j + 1])
        assert abs(csc.vals[a:b] @ r[csc.row_idx[a:b]]) < 1e-8

    def test_random_order_also_converges(self, csc_problem):
        csc, truth, sino = csc_problem
        x = icd_reconstruct(csc, sino, sweeps=8, order="random", seed=1)
        assert relative_error(x, truth) < 0.6

    def test_invalid_order(self, csc_problem):
        from repro.errors import ValidationError

        csc, _, sino = csc_problem
        with pytest.raises(ValidationError):
            icd_reconstruct(csc, sino, order="spiral")


class TestFBP:
    def test_ramp_filter_shape(self):
        f = ramp_filter(64)
        assert f.shape == (128,)
        assert f[0] == 0.0  # DC removed

    def test_hann_below_ramlak(self):
        assert ramp_filter(32, window="hann").max() <= ramp_filter(32).max()

    def test_filter_sinogram_preserves_shape(self, problem):
        _, geom, _, _, sino = problem
        out = filter_sinogram(sino, geom)
        assert out.shape == sino.shape

    def test_fbp_recovers_structure(self, problem):
        _, geom, op, truth, sino = problem
        x = fbp_reconstruct(op, sino, geom)
        assert correlation(x, truth) > 0.75

    def test_bad_window(self, problem):
        from repro.errors import ValidationError

        _, geom, op, _, sino = problem
        with pytest.raises(ValidationError):
            fbp_reconstruct(op, sino, geom, window="hamming")


class TestMetrics:
    def test_rmse_zero_for_identical(self):
        a = np.ones((4, 4))
        assert rmse(a, a) == 0.0

    def test_psnr_infinite_for_identical(self):
        a = np.ones(8)
        assert psnr(a, a) == float("inf")

    def test_relative_error_scale(self):
        ref = np.array([3.0, 4.0])
        assert relative_error(ref * 1.1, ref) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            rmse(np.ones(3), np.ones(4))

    def test_correlation_bounds(self, rng):
        a = rng.random(50)
        assert correlation(a, a) == pytest.approx(1.0)
        assert -1.0 <= correlation(a, rng.random(50)) <= 1.0


class TestSolversThroughCSCV:
    def test_sirt_with_cscv_operator_matches_csr(self):
        geom = ParallelBeamGeometry.for_image(16, num_views=32)
        coo, geom = build_ct_matrix(16, geom=geom)
        truth = disk_phantom(16, radius_frac=0.5).ravel()
        op_csr = ProjectionOperator(CSRMatrix.from_coo_matrix(coo))
        op_cscv = ProjectionOperator(CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2)))
        sino = op_csr.forward(truth)
        x_a = sirt_reconstruct(op_csr, sino, iterations=10)
        x_b = sirt_reconstruct(op_cscv, sino.astype(np.float64), iterations=10)
        assert relative_error(x_a, x_b) < 1e-6
