"""Tests for the kernel build/dispatch layer."""

import numpy as np
import pytest

from repro import config
from repro.kernels import dispatch
from repro.kernels.cbindings import load_library
from repro.kernels.cbuild import library_path


def c_available() -> bool:
    return library_path() is not None


class TestDispatch:
    def test_numpy_backend_returns_none(self):
        prev = config.runtime.backend
        config.runtime.backend = "numpy"
        try:
            assert dispatch.get("csr_spmv", np.float64) is None
            assert dispatch.backend_in_use() == "numpy"
        finally:
            config.runtime.backend = prev

    @pytest.mark.skipif(not c_available(), reason="no C compiler")
    def test_auto_backend_serves_kernels(self):
        prev = config.runtime.backend
        config.runtime.backend = "auto"
        try:
            assert dispatch.get("csr_spmv", np.float32) is not None
            assert dispatch.get("cscv_z_spmv", np.float64) is not None
            assert dispatch.backend_in_use() == "c"
        finally:
            config.runtime.backend = prev

    @pytest.mark.skipif(not c_available(), reason="no C compiler")
    def test_unknown_kernel_falls_back(self):
        prev = config.runtime.backend
        config.runtime.backend = "auto"
        try:
            assert dispatch.get("definitely_not_a_kernel", np.float64) is None
        finally:
            config.runtime.backend = prev

    def test_omp_threads_positive(self):
        assert dispatch.omp_threads() >= 1


@pytest.mark.skipif(not c_available(), reason="no C compiler")
class TestLibrary:
    def test_abi_version(self):
        lib = load_library()
        assert lib is not None
        assert lib.abi_version >= 1

    def test_unsupported_dtype_rejected(self):
        from repro.errors import KernelError

        lib = load_library()
        with pytest.raises(KernelError):
            lib.get("csr_spmv", np.int32)

    def test_kernel_callable_cached(self):
        lib = load_library()
        a = lib.get("csr_spmv", np.float64)
        b = lib.get("csr_spmv", np.float64)
        assert a is b


@pytest.mark.skipif(not c_available(), reason="no C compiler")
class TestCKernelsDirect:
    """Drive the raw C kernels against NumPy references."""

    def test_csr_kernel(self, rng):
        m, n, nnz = 9, 7, 30
        rows = np.sort(rng.integers(0, m, nnz))
        cols = rng.integers(0, n, nnz).astype(np.int32)
        vals = rng.standard_normal(nnz)
        row_ptr = np.zeros(m + 1, dtype=np.int32)
        np.add.at(row_ptr[1:], rows, 1)
        np.cumsum(row_ptr, out=row_ptr)
        x = rng.standard_normal(n)
        y = np.zeros(m)
        fn = load_library().get("csr_spmv", np.float64)
        fn(m, row_ptr, cols, vals, x, y)
        dense = np.zeros((m, n))
        np.add.at(dense, (rows, cols), vals)
        np.testing.assert_allclose(y, dense @ x, rtol=1e-12)

    def test_csc_kernel_zeroes_output(self, rng):
        n, m = 4, 5
        col_ptr = np.array([0, 1, 1, 2, 2], dtype=np.int32)
        row_idx = np.array([0, 3], dtype=np.int32)
        vals = np.array([2.0, -1.0])
        x = np.ones(n)
        y = np.full(m, 99.0)  # must be overwritten, not accumulated
        fn = load_library().get("csc_spmv", np.float64)
        fn(m, n, col_ptr, row_idx, vals, x, y)
        np.testing.assert_allclose(y, [2.0, 0, 0, -1.0, 0])


class TestBuildFallback:
    def test_forced_c_without_library_raises(self, monkeypatch):
        from repro.errors import KernelError
        from repro.kernels import cbindings

        prev = config.runtime.backend
        config.runtime.backend = "c"
        monkeypatch.setattr(cbindings, "load_library", lambda: None)
        try:
            with pytest.raises(KernelError):
                dispatch.get("csr_spmv", np.float64)
        finally:
            config.runtime.backend = prev

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "weird")
        with pytest.raises(ValueError):
            config.env_backend()

    def test_env_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert config.env_threads() == 3
        monkeypatch.setenv("REPRO_THREADS", "0")
        with pytest.raises(ValueError):
            config.env_threads()
