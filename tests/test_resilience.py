"""Chaos suite: fault injection, numerical guards, watchdog, degradation.

Every test installs its own fault plan via ``faults.inject`` (which
*replaces* the active plan), so the suite is deterministic even when the
whole CI job runs under ``REPRO_FAULTS=chaos``.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import config, obs
from repro.api import build_ct_matrix, operator
from repro.cli import main as cli_main
from repro.core.cache import OperatorCache
from repro.core.format_z import CSCVZMatrix
from repro.errors import (
    FormatError,
    NumericalError,
    SolverError,
    ValidationError,
)
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.phantom import disk_phantom, shepp_logan
from repro.recon import (
    ProjectionOperator,
    art_reconstruct,
    cgls_reconstruct,
    sirt_reconstruct,
)
from repro.recon.os_sart import os_sart_reconstruct
from repro.resilience import faults
from repro.resilience.faults import PROFILES, FaultInjected, parse_plan
from repro.resilience.guards import check as guard_check
from repro.resilience.guards import enabled_for
from repro.resilience.retry import backoff_delays, call_with_retries
from repro.resilience.watchdog import ResidualWatchdog, resolve_watchdog
from repro.sparse.csr import CSRMatrix
from repro.utils.pool import SharedPool, run_resilient

SIZE = 16


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Neutralise any CI-wide fault plan; each test injects its own."""
    prev = config.runtime.faults
    faults.configure("")
    yield
    faults.configure(prev)


@pytest.fixture(autouse=True)
def _guard_off():
    prev = config.runtime.guard
    config.runtime.guard = "off"
    yield
    config.runtime.guard = prev


@pytest.fixture
def metrics():
    obs.registry.reset()
    yield obs.registry
    obs.registry.reset()


@pytest.fixture
def geom():
    return ParallelBeamGeometry.for_image(SIZE)


@pytest.fixture
def cache(tmp_path):
    return OperatorCache(root=tmp_path / "opcache", enabled=True)


@pytest.fixture(scope="module")
def problem():
    geom = ParallelBeamGeometry.for_image(SIZE, num_views=32)
    coo, geom = build_ct_matrix(SIZE, geom=geom)
    truth = disk_phantom(SIZE, radius_frac=0.5).ravel()
    csr = CSRMatrix.from_coo_matrix(coo)
    op = ProjectionOperator(csr)
    sino = op.forward(truth)
    return csr, geom, op, truth, sino


def _counter(reg, name):
    inst = reg.get(name)
    return 0.0 if inst is None else inst.value


# ---------------------------------------------------------------------- #
# plan parsing / firing semantics


class TestFaultPlans:
    def test_parse_rules_and_options(self):
        plan = parse_plan("a.b:raise,c.*:corrupt:p=0.25:every=2:times=3:after=1")
        assert len(plan.rules) == 2
        r = plan.rules[1]
        assert (r.pattern, r.action) == ("c.*", "corrupt")
        assert (r.p, r.every, r.times, r.after) == (0.25, 2, 3, 1)

    def test_profiles_expand(self):
        plan = parse_plan("chaos")
        assert len(plan.rules) == 6
        patterns = {r.pattern for r in plan.rules}
        assert {"journal.append", "ckpt.store"} <= patterns
        assert faults.PROFILES["kernel-chaos"].startswith("kernel.build")

    @pytest.mark.parametrize("bad", [
        "nocolon", "a.b:raise:oops", "a.b:raise:p=2", "a.b:raise:every=0",
        "a.b:raise:wat=1",
    ])
    def test_malformed_rules_raise(self, bad):
        with pytest.raises(ValueError):
            parse_plan(bad)

    def test_empty_plan_never_fires(self):
        assert parse_plan("").rules == []
        assert faults.fire("anything") is None

    def test_every_after_times(self):
        with faults.inject("s:raise:every=2:after=1:times=2"):
            fired = []
            for _ in range(10):
                try:
                    faults.fire("s")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            # matches 3, 5 fire ((m - after) % every == 0), then exhausted
            assert fired == [False, False, True, False, True] + [False] * 5

    def test_probability_is_seeded_deterministic(self):
        def pattern(spec):
            out = []
            with faults.inject(spec):
                for _ in range(40):
                    try:
                        faults.fire("s")
                        out.append(0)
                    except FaultInjected:
                        out.append(1)
            return out

        a = pattern("seed=7,s:raise:p=0.5")
        b = pattern("seed=7,s:raise:p=0.5")
        c = pattern("seed=8,s:raise:p=0.5")
        assert a == b
        assert a != c
        assert 0 < sum(a) < 40

    def test_first_matching_rule_owns_the_site(self):
        with faults.inject("a.*:raise:every=2,a.b:raise"):
            # the wildcard rule matches first; the exact rule never runs
            assert faults.fire("a.b") is None
            with pytest.raises(FaultInjected):
                faults.fire("a.b")

    def test_directive_actions_are_returned_not_raised(self):
        with faults.inject("cache.load.read:corrupt"):
            assert faults.fire("cache.load.read") == "corrupt"

    def test_inject_replaces_and_restores(self):
        faults.configure(PROFILES["chaos"])
        try:
            with faults.inject("only.this:raise"):
                # the chaos rules are gone inside the scope
                assert faults.fire("cache.lock") is None
                assert faults.active_spec() == "only.this:raise"
            assert faults.active_spec() == PROFILES["chaos"]
        finally:
            faults.reset()

    def test_disabled_window(self):
        with faults.inject("s:raise"):
            with faults.disabled():
                assert faults.fire("s") is None
            with pytest.raises(FaultInjected):
                faults.fire("s")

    def test_firings_are_counted(self, metrics):
        with faults.inject("s:raise:times=2"):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    faults.fire("s")
        assert _counter(metrics, "faults.injected.s") == 2
        assert _counter(metrics, "faults.injected.total") == 2

    def test_corrupt_array_nan_inf_and_noop(self):
        arr = np.ones(4, dtype=np.float32)
        assert faults.corrupt_array("s", arr) is arr  # no plan: no copy
        with faults.inject("s:nan"):
            out = faults.corrupt_array("s", arr)
            assert np.isnan(out[0]) and arr[0] == 1.0
        with faults.inject("s:inf"):
            assert np.isinf(faults.corrupt_array("s", arr)[0])


# ---------------------------------------------------------------------- #
# retry / backoff primitives


class TestRetryPrimitives:
    def test_backoff_is_capped_and_jittered(self):
        gen = backoff_delays(base=0.1, cap=0.4, jitter=0.5, seed=3)
        delays = [next(gen) for _ in range(6)]
        for k, d in enumerate(delays):
            nominal = min(0.4, 0.1 * 2 ** k)
            assert 0.5 * nominal <= d <= 1.5 * nominal

    def test_backoff_seeded_reproducible(self):
        a = backoff_delays(base=0.1, cap=1.0, seed=5)
        b = backoff_delays(base=0.1, cap=1.0, seed=5)
        assert [next(a) for _ in range(5)] == [next(b) for _ in range(5)]

    def test_call_with_retries_recovers_and_counts(self, metrics):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert call_with_retries(flaky, site="t", attempts=3) == "ok"
        assert _counter(metrics, "retry.t.attempts") == 2

    def test_call_with_retries_final_failure_propagates(self):
        with pytest.raises(OSError):
            call_with_retries(lambda: (_ for _ in ()).throw(OSError("x")),
                              site="t", attempts=2)
        with pytest.raises(ValueError):
            call_with_retries(lambda: 1, site="t", attempts=0)

    def test_call_with_retries_sleeps_between_attempts(self):
        naps = []
        with pytest.raises(OSError):
            call_with_retries(
                lambda: (_ for _ in ()).throw(OSError("x")),
                site="t", attempts=3, base=0.01, sleep=naps.append,
            )
        assert len(naps) == 2 and all(n > 0 for n in naps)


# ---------------------------------------------------------------------- #
# pool degradation


class TestPoolDegradation:
    @pytest.fixture
    def pool(self):
        p = SharedPool("test-resilience", lambda: 2)
        yield p
        p.shutdown()

    def test_clean_run_matches_map(self, pool, metrics):
        out = run_resilient(pool, lambda i: i * i, range(6), 2, label="t")
        assert out == [i * i for i in range(6)]
        assert _counter(metrics, "retry.pool.task.t.attempts") == 0

    def test_every_task_crashing_degrades_to_serial(self, pool, metrics):
        with faults.inject("pool.task.t:raise"):
            out = run_resilient(pool, lambda i: i + 1, range(4), 2, label="t")
        assert out == [1, 2, 3, 4]
        assert _counter(metrics, "retry.pool.task.t.attempts") == 4
        assert _counter(metrics, "retry.pool.task.t.serial_fallbacks") == 4

    def test_intermittent_crashes_recover_bitwise(self, pool, metrics):
        with faults.inject("pool.task.t:raise:every=2"):
            out = run_resilient(pool, lambda i: i * 3, range(8), 2, label="t")
        assert out == [i * 3 for i in range(8)]
        assert _counter(metrics, "retry.pool.task.t.attempts") >= 1

    def test_real_deterministic_bug_still_propagates(self, pool):
        def bad(i):
            raise ValueError("genuine bug")

        with pytest.raises(ValueError, match="genuine bug"):
            run_resilient(pool, bad, range(2), 2, label="t")

    def test_threaded_spmv_survives_worker_crashes(self, rng, monkeypatch):
        # the block-range fan-out must stay bitwise under worker crashes
        from repro.core.params import CSCVParams
        from repro.core.spmv import spmv_z

        monkeypatch.setattr(config.runtime, "backend", "numpy")
        geom = ParallelBeamGeometry.for_image(SIZE, num_views=32)
        coo, geom = build_ct_matrix(SIZE, geom=geom, dtype=np.float32)
        fmt = CSCVZMatrix.from_ct(coo, geom, CSCVParams(4, 4, 1))
        x = rng.random(fmt.shape[1]).astype(np.float32)
        clean = np.zeros(fmt.shape[0], dtype=np.float32)
        spmv_z(fmt.data, x, clean, threads=2)
        again = np.zeros_like(clean)
        with faults.inject("pool.task.spmv:raise:every=2"):
            spmv_z(fmt.data, x, again, threads=2)
        np.testing.assert_array_equal(clean, again)


# ---------------------------------------------------------------------- #
# cache faults


class TestCacheFaults:
    def test_corrupt_load_evicts_and_rebuilds(self, geom, cache):
        op1 = operator(geom, fmt="cscv-z", cache_obj=cache)
        with faults.inject("cache.load.read:corrupt:times=1"):
            op2 = operator(geom, fmt="cscv-z", cache_obj=cache)
        st = cache.stats()
        assert st["corrupt"] >= 1 and st["evictions"] >= 1
        x = np.linspace(0, 1, op1.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(op1.forward(x), op2.forward(x))

    def test_short_read_is_a_miss(self, geom, cache):
        op = operator(geom, fmt="cscv-z", cache_obj=cache)
        with faults.inject("cache.load.read:short-read:times=1"):
            op2 = operator(geom, fmt="cscv-z", cache_obj=cache)
        assert cache.stats()["corrupt"] >= 1
        x = np.linspace(0, 1, op.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(op.forward(x), op2.forward(x))

    def test_enospc_store_degrades_to_uncached(self, geom, cache):
        with faults.inject("cache.store.write:enospc"):
            op = operator(geom, fmt="cscv-z", cache_obj=cache)
        assert int(cache.lifetime_stats().get("store_errors", 0)) >= 1
        clean = operator(geom, fmt="cscv-z", cache=False)
        x = np.linspace(0, 1, op.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(op.forward(x), clean.forward(x))

    def test_lock_timeout_proceeds_unlocked(self, cache, metrics):
        with faults.inject("cache.lock:timeout"):
            with cache._lock("k9"):
                assert not cache._lock_path("k9").exists()
        assert _counter(metrics, "cache.lock_timeouts") == 1

    def test_truncated_array_file_is_a_miss_and_evicted(self, geom, cache):
        operator(geom, fmt="cscv-z", cache_obj=cache)
        entries = [e for e in cache.entries() if e.format == "cscv-z"]
        assert entries
        entry = cache._entry_path(entries[0].key)
        vals = entry / "values.npy"
        vals.write_bytes(vals.read_bytes()[: max(1, vals.stat().st_size // 2)])
        assert cache.load(entries[0].key, CSCVZMatrix) is None
        assert not entry.exists()
        assert cache.stats()["corrupt"] >= 1


# ---------------------------------------------------------------------- #
# load_cscv_dir partial-entry regression (satellite)


class TestLoadCscvDirEviction:
    @pytest.fixture
    def saved(self, geom, tmp_path):
        from repro.core.io import save_cscv_dir

        # a monolithic (unsharded) format: this class tests the on-disk
        # CSCV entry layout, which sharded facades don't expose
        fmt = operator(geom, fmt="cscv-z", cache=False, shard_workers=1).fmt
        d = tmp_path / "entry"
        save_cscv_dir(d, fmt.data)
        return d

    def test_missing_array_file(self, saved):
        from repro.core.io import load_cscv_dir

        (saved / "values.npy").unlink()
        with pytest.raises(FormatError, match="evicted partial entry"):
            load_cscv_dir(saved)
        assert not saved.exists()

    def test_truncated_array_file(self, saved):
        from repro.core.io import load_cscv_dir

        vals = saved / "values.npy"
        vals.write_bytes(vals.read_bytes()[:16])  # header cut mid-magic
        with pytest.raises(FormatError):
            load_cscv_dir(saved)
        assert not saved.exists()

    def test_truncated_meta_file(self, saved):
        from repro.core.io import META_FILE, load_cscv_dir

        meta = saved / META_FILE
        meta.write_bytes(meta.read_bytes()[:8])
        with pytest.raises(FormatError):
            load_cscv_dir(saved)
        assert not saved.exists()


# ---------------------------------------------------------------------- #
# kernel build / load degradation (satellite)


@pytest.fixture
def kernel_state():
    """Clean kernel module state; restore after the test."""
    from repro.kernels import cbindings, cbuild

    cbindings.reset_load_state()
    yield
    cbindings.reset_load_state()
    cbuild.reset_cache_state()


@pytest.fixture
def compiled_lib():
    """Path to a real compiled library, or skip when no toolchain."""
    from repro.kernels import cbuild

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        path = cbuild.library_path()
    if path is None:
        pytest.skip("no working C toolchain in this environment")
    return path


class TestKernelDispatchDegradation:
    def test_missing_library_falls_back_with_one_warning(
        self, compiled_lib, kernel_state, metrics, monkeypatch
    ):
        from repro.kernels import cbindings, dispatch

        monkeypatch.setattr(config.runtime, "backend", "auto")
        with faults.inject("kernel.load:missing:times=1"):
            with pytest.warns(RuntimeWarning, match="missing"):
                assert cbindings.load_library() is None
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # a second warning would fail
                assert cbindings.load_library() is None
                assert dispatch.get("csr_spmv", np.float64) is None
                assert dispatch.backend_in_use() == "numpy"
        assert _counter(metrics, "kernel.load.failures") == 1
        assert _counter(metrics, "dispatch.fallback.csr_spmv") == 2

    def test_corrupt_library_falls_back_with_one_warning(
        self, compiled_lib, kernel_state, metrics, monkeypatch
    ):
        from repro.kernels import cbindings, dispatch

        monkeypatch.setattr(config.runtime, "backend", "auto")
        with faults.inject("kernel.load:corrupt:times=1"):
            with pytest.warns(RuntimeWarning, match="unloadable"):
                assert cbindings.load_library() is None
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert dispatch.get("csr_spmv", np.float32) is None
        assert _counter(metrics, "kernel.load.failures") == 1
        assert _counter(metrics, "dispatch.fallback.csr_spmv") == 1

    def test_numpy_fallback_is_numerically_unaffected(
        self, compiled_lib, kernel_state, problem, monkeypatch
    ):
        csr, _, op, truth, _ = problem
        monkeypatch.setattr(config.runtime, "backend", "auto")
        clean = op.forward(truth)
        from repro.kernels import cbindings

        cbindings.reset_load_state()
        with faults.inject("kernel.load:missing:times=1"):
            with pytest.warns(RuntimeWarning):
                cbindings.load_library()
            degraded = op.forward(truth)
        np.testing.assert_allclose(degraded, clean, rtol=1e-12)

    def test_forced_c_backend_raises_instead_of_degrading(
        self, compiled_lib, kernel_state, monkeypatch
    ):
        from repro.errors import KernelError
        from repro.kernels import dispatch

        monkeypatch.setattr(config.runtime, "backend", "c")
        with faults.inject("kernel.load:missing:times=1"):
            with pytest.warns(RuntimeWarning):
                with pytest.raises(KernelError, match="REPRO_BACKEND=c"):
                    dispatch.get("csr_spmv", np.float64)


class TestCompileFailureMarker:
    def test_injected_build_failure_writes_persistent_marker(
        self, kernel_state, tmp_path, metrics, monkeypatch
    ):
        from repro.kernels import cbuild

        monkeypatch.setattr(config, "cache_dir", lambda: str(tmp_path))
        cbuild.reset_cache_state()
        with faults.inject("kernel.build:fail"):
            with pytest.warns(RuntimeWarning, match="unavailable"):
                assert cbuild.library_path() is None
        marker = cbuild.failure_marker_path()
        assert marker.is_file()
        assert "fault injected" in marker.read_text()

        # a "new process": the marker short-circuits the compile attempt
        cbuild.reset_cache_state()
        with pytest.warns(RuntimeWarning, match="previous compile failed"):
            assert cbuild.library_path() is None
        assert _counter(metrics, "kernel.build.marker_skips") == 1
        assert not list(tmp_path.glob("*.so"))  # no compiler was invoked

    def test_explicit_build_retries_and_clears_marker(
        self, compiled_lib, kernel_state, tmp_path, monkeypatch
    ):
        from repro.kernels import cbuild

        monkeypatch.setattr(config, "cache_dir", lambda: str(tmp_path))
        cbuild.reset_cache_state()
        with faults.inject("kernel.build:fail"):
            with pytest.warns(RuntimeWarning):
                assert cbuild.library_path() is None
        assert cbuild.failure_marker_path().is_file()
        path = cbuild.build_library()  # `repro kernels build` path
        assert Path(path).is_file()
        assert not cbuild.failure_marker_path().is_file()
        cbuild.reset_cache_state()
        assert cbuild.library_path() == path


# ---------------------------------------------------------------------- #
# numerical guards


class TestGuards:
    def test_levels_gate_kinds(self):
        config.runtime.guard = "off"
        assert not enabled_for("input") and not enabled_for("output")
        config.runtime.guard = "inputs"
        assert enabled_for("input") and not enabled_for("output")
        config.runtime.guard = "full"
        assert enabled_for("input") and enabled_for("output")

    def test_off_passes_nan_through(self):
        bad = np.array([1.0, np.nan])
        assert guard_check(bad, "x", where="t") is bad

    def test_inputs_level_names_array_and_boundary(self, metrics):
        config.runtime.guard = "inputs"
        with pytest.raises(NumericalError, match="sinogram at t .*1 non-finite"):
            guard_check(np.array([np.inf, 1.0]), "sinogram", where="t")
        assert _counter(metrics, "guard.nonfinite.t") == 1
        assert _counter(metrics, "guard.checks") == 1
        # output kind is not screened at this level
        guard_check(np.array([np.nan]), "y", where="t", kind="output")

    def test_full_level_screens_outputs(self):
        config.runtime.guard = "full"
        with pytest.raises(NumericalError):
            guard_check(np.array([np.nan]), "A x", where="t", kind="output")

    def test_solver_rejects_nan_sinogram(self, problem):
        _, _, op, _, sino = problem
        bad = np.array(sino, copy=True)
        bad[0] = np.nan
        config.runtime.guard = "inputs"
        for solver in (
            lambda: sirt_reconstruct(op, bad, iterations=2),
            lambda: cgls_reconstruct(op, bad, iterations=2),
            lambda: art_reconstruct(op, bad, iterations=2),
        ):
            with pytest.raises(NumericalError, match="sinogram"):
                solver()
        config.runtime.guard = "off"
        sirt_reconstruct(op, bad, iterations=1)  # unguarded: no raise

    def test_poisoned_operator_input_caught_at_boundary(self, problem):
        _, _, op, truth, sino = problem
        config.runtime.guard = "inputs"
        with faults.inject("operator.input.forward:nan"):
            with pytest.raises(NumericalError, match="operator.forward"):
                op.forward(truth)
        with faults.inject("operator.input.adjoint:inf"):
            with pytest.raises(NumericalError, match="operator.adjoint"):
                op.adjoint(sino)
        # with guards off the poison flows through silently
        config.runtime.guard = "off"
        with faults.inject("operator.input.forward:nan"):
            assert np.isnan(op.forward(truth)).any()


# ---------------------------------------------------------------------- #
# residual watchdog


class TestWatchdogUnit:
    def test_improving_run_is_ok_and_tracks_best(self):
        wd = ResidualWatchdog(solver="t", relax=1.0)
        for k, r in enumerate([3.0, 2.0, 1.0]):
            assert wd.observe(k, r, np.full(2, float(k))) == "ok"
        assert wd.best_residual == 1.0
        np.testing.assert_array_equal(wd.best_x, [2.0, 2.0])

    def test_growth_needs_patience_consecutive(self):
        wd = ResidualWatchdog(solver="t", relax=1.0, patience=3)
        wd.observe(0, 1.0, np.zeros(1))
        assert wd.observe(1, 3.0, np.zeros(1)) == "ok"
        assert wd.observe(2, 3.0, np.zeros(1)) == "ok"
        assert wd.observe(3, 1.5, np.zeros(1)) == "ok"  # streak resets
        assert wd.observe(4, 3.0, np.zeros(1)) == "ok"
        assert wd.observe(5, 3.0, np.zeros(1)) == "ok"
        assert wd.observe(6, 3.0, np.zeros(1)) == "restart"
        assert wd.restarts == 1 and wd.relax == 0.5

    def test_nonfinite_residual_restarts_immediately(self, metrics):
        wd = ResidualWatchdog(solver="t", relax=2.0)
        wd.observe(0, 1.0, np.zeros(1))
        assert wd.observe(1, float("nan"), np.zeros(1)) == "restart"
        assert _counter(metrics, "guard.watchdog.restarts") == 1

    def test_budget_exhaustion_raises_with_history(self, metrics):
        wd = ResidualWatchdog(solver="t", relax=1.0, max_restarts=1)
        wd.observe(0, 1.0, np.zeros(1))
        assert wd.observe(1, float("inf"), np.zeros(1)) == "restart"
        with pytest.raises(SolverError) as ei:
            wd.observe(2, float("inf"), np.zeros(1))
        assert ei.value.history[-1]["action"] == "fail"
        assert any(h.get("action") == "restart" for h in ei.value.history)
        assert _counter(metrics, "guard.watchdog.failures") == 1

    def test_relax_floor(self):
        wd = ResidualWatchdog(solver="t", relax=1e-3, min_relax=1e-3,
                              max_restarts=5)
        wd.observe(0, 1.0, np.zeros(1))
        wd.observe(1, float("nan"), np.zeros(1))
        assert wd.relax == 1e-3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResidualWatchdog(solver="t", patience=0)
        with pytest.raises(ValueError):
            ResidualWatchdog(solver="t", growth_factor=1.0)
        with pytest.raises(ValueError):
            ResidualWatchdog(solver="t", backoff=1.0)

    def test_resolve_watchdog(self):
        assert resolve_watchdog(None, solver="t") is None
        assert resolve_watchdog(False, solver="t") is None
        wd = resolve_watchdog(True, solver="t", relax=1.5)
        assert isinstance(wd, ResidualWatchdog) and wd.relax == 1.5
        mine = ResidualWatchdog(solver="t")
        assert resolve_watchdog(mine, solver="t", relax=0.7) is mine
        assert mine.relax == 0.7


class TestWatchdogInSolvers:
    def _rnorm(self, op, sino, x):
        return float(np.linalg.norm(sino - op.forward(x)))

    def test_sirt_overrelaxed_recovers(self, problem):
        _, _, op, truth, sino = problem
        x_un = sirt_reconstruct(op, sino, iterations=40, relax=3.8,
                                nonneg=False)
        wd = ResidualWatchdog(solver="sirt")
        x_g = sirt_reconstruct(op, sino, iterations=40, relax=3.8,
                               nonneg=False, watchdog=wd)
        r_un = self._rnorm(op, sino, x_un)
        r_g = self._rnorm(op, sino, x_g)
        assert wd.restarts >= 1
        assert np.isfinite(r_g)
        assert r_g < float(np.linalg.norm(sino))  # actually reconstructs
        assert (not np.isfinite(r_un)) or r_g < r_un

    def test_os_sart_overrelaxed_recovers(self, problem):
        csr, geom, op, truth, sino = problem
        wd = ResidualWatchdog(solver="os_sart")
        x_g = os_sart_reconstruct(csr, geom, sino, num_subsets=4,
                                  iterations=10, relax=3.8, nonneg=False,
                                  watchdog=wd)
        assert wd.restarts >= 1
        r_g = self._rnorm(op, sino, x_g)
        assert np.isfinite(r_g) and r_g < float(np.linalg.norm(sino))

    def test_art_watchdog_is_inert_on_convergent_run(self, problem):
        _, _, op, _, sino = problem
        a = art_reconstruct(op, sino, iterations=8, relax=0.9)
        wd = ResidualWatchdog(solver="art")
        b = art_reconstruct(op, sino, iterations=8, relax=0.9, watchdog=wd)
        np.testing.assert_array_equal(a, b)
        assert wd.restarts == 0

    def test_sirt_watchdog_is_inert_on_convergent_run(self, problem):
        _, _, op, _, sino = problem
        a = sirt_reconstruct(op, sino, iterations=8)
        b = sirt_reconstruct(op, sino, iterations=8, watchdog=True)
        np.testing.assert_array_equal(a, b)

    def test_cgls_restart_reinitialises_recurrence(self, problem):
        _, _, op, _, sino = problem

        class ForceOneRestart(ResidualWatchdog):
            def observe(self, iteration, residual, x):
                out = super().observe(iteration, residual, x)
                if iteration == 2 and self.restarts == 0:
                    self.restarts += 1
                    return "restart"
                return out

        wd = ForceOneRestart(solver="cgls")
        x = cgls_reconstruct(op, sino, iterations=25, watchdog=wd)
        assert wd.restarts == 1
        assert self._rnorm(op, sino, x) < 0.1 * float(np.linalg.norm(sino))

    def test_sirt_exhausted_budget_raises_solver_error(self, problem):
        _, _, op, _, sino = problem
        wd = ResidualWatchdog(solver="sirt", max_restarts=0)
        with pytest.raises(SolverError) as ei:
            sirt_reconstruct(op, sino, iterations=60, relax=3.9,
                             nonneg=False, watchdog=wd)
        assert ei.value.history  # post-mortem data travels with the error

    def test_relax_validation_bounds(self, problem):
        _, _, op, _, sino = problem
        with pytest.raises(ValidationError):
            sirt_reconstruct(op, sino, relax=4.5)
        with pytest.raises(ValidationError):
            art_reconstruct(op, sino, relax=2.0)  # ART keeps (0, 2)


# ---------------------------------------------------------------------- #
# chaos end-to-end: reconstructions stay bitwise under injected faults


class TestChaosEndToEnd:
    def _reconstruct(self, cache_root):
        geom = ParallelBeamGeometry.for_image(SIZE, num_views=24)
        cache = OperatorCache(root=cache_root, enabled=True)
        truth = shepp_logan(SIZE).ravel().astype(np.float32)
        # build twice: the second call exercises the load path
        operator(geom, fmt="cscv-z", cache_obj=cache)
        op = operator(geom, fmt="cscv-z", cache_obj=cache)
        sino = op.forward(truth)
        return sirt_reconstruct(op, sino, iterations=6)

    def test_chaos_profile_is_bitwise_safe(self, tmp_path):
        with faults.disabled():
            clean = self._reconstruct(tmp_path / "clean")
        with faults.inject(PROFILES["chaos"]):
            chaotic = self._reconstruct(tmp_path / "chaos")
        np.testing.assert_array_equal(clean, chaotic)

    def test_chaos_profile_actually_fires(self, tmp_path, metrics):
        with faults.inject(PROFILES["chaos"]):
            self._reconstruct(tmp_path / "observed")
        assert _counter(metrics, "faults.injected.total") >= 1


# ---------------------------------------------------------------------- #
# CLI error handling (satellite)


class TestCLIErrorHandling:
    def test_repro_error_exits_nonzero_with_one_line(self, capsys):
        assert cli_main(["spmv", "--dataset", "no-such-dataset"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ValidationError:")
        assert len(err.strip().splitlines()) == 1

    def test_debug_flag_reraises(self):
        with pytest.raises(ValidationError):
            cli_main(["--debug", "spmv", "--dataset", "no-such-dataset"])

    def test_invalid_relax_is_one_line(self, capsys):
        assert cli_main(["reconstruct", "--size", "16", "--iterations", "2",
                         "--relax", "9", "--no-cache"]) == 1
        assert "error: ValidationError" in capsys.readouterr().err

    def test_reconstruct_watchdog_smoke(self, capsys):
        assert cli_main(["reconstruct", "--size", "16", "--solver", "sirt",
                         "--iterations", "8", "--relax", "3.5",
                         "--watchdog", "--no-cache"]) == 0
        assert "relative error" in capsys.readouterr().out

    def test_info_reports_resilience_state(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "guards" in out and "fault plan" in out

    def test_kernels_status(self, capsys):
        assert cli_main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "failure marker" in out
