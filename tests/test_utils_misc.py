"""Tests for repro.utils timing, partitioning and table rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.partition import chunk_ranges, greedy_balance, imbalance, split_evenly
from repro.utils.tables import Table, render_grid
from repro.utils.timing import Timer, gflops, min_time


class TestTimer:
    def test_lap_accumulates(self):
        t = Timer()
        with t.lap("a"):
            pass
        with t.lap("a"):
            pass
        assert t.laps["a"] >= 0.0
        assert t.total() == pytest.approx(sum(t.laps.values()))

    def test_multiple_names(self):
        t = Timer()
        with t.lap("x"):
            pass
        with t.lap("y"):
            pass
        assert set(t.laps) == {"x", "y"}


class TestMinTime:
    def test_returns_positive(self):
        assert min_time(lambda: sum(range(100)), iterations=3, warmup=1) > 0.0

    def test_respects_budget(self):
        import time

        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.02)

        min_time(slow, iterations=100, warmup=0, max_seconds=0.05)
        assert len(calls) < 100

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            min_time(lambda: None, iterations=0)

    def test_gflops(self):
        assert gflops(5_000_000, 0.01) == pytest.approx(1.0)

    def test_gflops_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gflops(1, 0.0)


class TestSplitEvenly:
    def test_tiles_range(self):
        parts = split_evenly(10, 3)
        assert parts == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        parts = split_evenly(2, 4)
        assert len(parts) == 4
        assert parts[-1][0] == parts[-1][1]  # trailing empties

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            split_evenly(-1, 2)
        with pytest.raises(ValidationError):
            split_evenly(3, 0)

    @given(st.integers(0, 500), st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_property_cover_and_disjoint(self, n, parts):
        ranges = split_evenly(n, parts)
        assert len(ranges) == parts
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(n))


class TestChunkRanges:
    def test_basic(self):
        assert chunk_ranges(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValidationError):
            chunk_ranges(5, 0)


class TestGreedyBalance:
    def test_all_assigned_once(self):
        w = [5, 3, 3, 2, 2, 1]
        bins = greedy_balance(w, 3)
        flat = sorted(i for b in bins for i in b)
        assert flat == list(range(6))

    def test_balances_better_than_naive(self):
        w = np.array([8, 1, 1, 1, 1, 1, 1, 1, 1])
        bins = greedy_balance(w, 2)
        assert imbalance(w, bins) < 0.5

    def test_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            greedy_balance([-1.0], 1)

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=40),
        st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_partition(self, w, parts):
        bins = greedy_balance(w, parts)
        assert sorted(i for b in bins for i in b) == list(range(len(w)))


class TestTable:
    def test_render_contains_cells(self):
        t = Table(headers=["a", "b"], title="T")
        t.add_row("x", 1.5)
        out = t.render()
        assert "T" in out and "x" in out and "1.5" in out

    def test_row_length_checked(self):
        t = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_mark_extremes(self):
        t = Table(headers=["n", "v"], fmt=".1f")
        t.add_row("x", 1.0).add_row("y", 3.0).add_row("z", 2.0)
        t.mark_extremes(1)
        out = t.render()
        assert "3.0*" in out and "2.0~" in out

    def test_none_rendered_as_dash(self):
        t = Table(headers=["a"])
        t.add_row(None)
        assert "-" in t.render()


class TestRenderGrid:
    def test_shape_and_labels(self):
        out = render_grid(np.arange(6).reshape(2, 3), row_labels=["r0", "r1"])
        assert "r0" in out and "r1" in out

    def test_heatmap_glyphs(self):
        out = render_grid(np.array([[0.0, 100.0]]), heat=True, fmt=".0f")
        assert "@" in out  # max cell gets the darkest glyph

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_grid(np.arange(3))

    def test_nan_rendered_as_dash(self):
        out = render_grid(np.array([[np.nan, 1.0]]))
        assert "-" in out
