"""Tests for repro.geometry.parallel_beam."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.parallel_beam import ParallelBeamGeometry


@pytest.fixture
def geom():
    return ParallelBeamGeometry(image_size=25, num_bins=38, num_views=45, delta_angle_deg=4.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(image_size=0, num_bins=4, num_views=4, delta_angle_deg=1.0),
            dict(image_size=4, num_bins=0, num_views=4, delta_angle_deg=1.0),
            dict(image_size=4, num_bins=4, num_views=0, delta_angle_deg=1.0),
            dict(image_size=4, num_bins=4, num_views=4, delta_angle_deg=0.0),
            dict(image_size=4, num_bins=4, num_views=4, delta_angle_deg=1.0, pixel_size=0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(GeometryError):
            ParallelBeamGeometry(**kwargs)


class TestSizes:
    def test_counts(self, geom):
        assert geom.num_pixels == 625
        assert geom.num_rays == 38 * 45
        assert geom.shape == (38 * 45, 625)

    def test_for_image_covers_diagonal(self):
        g = ParallelBeamGeometry.for_image(512, 240)
        assert g.num_bins >= int(512 * math.sqrt(2))
        assert g.covers_image()

    def test_for_image_matches_paper_proportions(self):
        # paper Table II: 512 image -> 730 bins; ours lands close
        g = ParallelBeamGeometry.for_image(512)
        assert abs(g.num_bins - 730) < 10


class TestAnglesAndCoordinates:
    def test_view_angles_degrees(self, geom):
        deg = geom.view_angles(degrees=True)
        assert deg[0] == 0.0 and deg[8] == 32.0

    def test_pixel_centers_symmetry(self, geom):
        X, Y = geom.pixel_centers()
        # centred image: coordinates sum to zero
        assert abs(X.sum()) < 1e-9 and abs(Y.sum()) < 1e-9

    def test_center_pixel_at_origin(self, geom):
        x, y = geom.pixel_center(12, 12)  # 25x25 centre
        assert x == 0.0 and y == 0.0

    def test_pixel_center_matches_grid(self, geom):
        X, Y = geom.pixel_centers()
        p = geom.pixel_index(3, 7)
        assert X[p] == pytest.approx(geom.pixel_center(3, 7)[0])
        assert Y[p] == pytest.approx(geom.pixel_center(3, 7)[1])

    def test_pixel_center_bounds(self, geom):
        with pytest.raises(GeometryError):
            geom.pixel_center(25, 0)

    def test_detector_coordinate_view0(self, geom):
        # view 0: s = x
        s = geom.detector_coordinate(3.0, -5.0, 0)
        assert float(s) == pytest.approx(3.0)

    def test_detector_coordinate_90deg(self):
        g = ParallelBeamGeometry(image_size=4, num_bins=8, num_views=2, delta_angle_deg=90.0)
        s = g.detector_coordinate(3.0, -5.0, 1)
        assert float(s) == pytest.approx(-5.0)

    def test_s_to_bin_center(self, geom):
        # s = 0 lands exactly mid-detector
        assert float(geom.s_to_bin(0.0)) == pytest.approx(19.0)

    def test_bin_lower_edge_roundtrip(self, geom):
        edges = geom.bin_lower_edge(np.arange(geom.num_bins))
        assert np.all(np.diff(edges) == pytest.approx(geom.bin_spacing))


class TestIndexing:
    def test_row_index_roundtrip(self, geom):
        rows = geom.row_index(np.array([0, 3, 44]), np.array([0, 10, 37]))
        v, b = geom.row_to_view_bin(rows)
        assert v.tolist() == [0, 3, 44]
        assert b.tolist() == [0, 10, 37]

    def test_row_index_bin_major(self, geom):
        # consecutive bins of one view are consecutive rows
        assert geom.row_index(2, 5) + 1 == geom.row_index(2, 6)

    def test_describe_fields(self, geom):
        d = geom.describe()
        assert d["num bin"] == 38 and d["num view"] == 45
