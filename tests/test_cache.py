"""Persistent operator cache + repro.api.operator() facade tests."""

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.api import SkippedFormat, build_ct_matrix, build_format, operator
from repro.core.cache import OperatorCache, geometry_signature, operator_key
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.errors import FormatError, ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.coo import COOMatrix

SIZE = 16


@pytest.fixture()
def geom():
    return ParallelBeamGeometry.for_image(SIZE)


@pytest.fixture()
def cache(tmp_path):
    return OperatorCache(root=tmp_path / "opcache", enabled=True)


def _key(geom, **over):
    kw = dict(geom=geom, fmt="cscv-z", projector="strip", dtype=np.float32,
              params=CSCVParams(8, 8, 1))
    kw.update(over)
    return operator_key(**kw)


# ---------------------------------------------------------------------- #
# keys


class TestOperatorKey:
    def test_stable_across_instances(self, geom):
        g2 = ParallelBeamGeometry.for_image(SIZE)
        assert _key(geom) == _key(g2)
        assert len(_key(geom)) == 32 and set(_key(geom)) <= set("0123456789abcdef")

    def test_stable_across_processes(self, geom):
        code = (
            "import numpy as np;"
            "from repro.core.cache import operator_key;"
            "from repro.core.params import CSCVParams;"
            "from repro.geometry.parallel_beam import ParallelBeamGeometry;"
            f"g = ParallelBeamGeometry.for_image({SIZE});"
            "print(operator_key(geom=g, fmt='cscv-z', projector='strip',"
            " dtype=np.float32, params=CSCVParams(8, 8, 1)))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == _key(geom)

    def test_any_input_changes_key(self, geom):
        base = _key(geom)
        assert _key(geom, fmt="cscv-m") != base
        assert _key(geom, projector="pixel") != base
        assert _key(geom, dtype=np.float64) != base
        assert _key(geom, params=CSCVParams(8, 8, 2)) != base
        assert _key(geom, params=None) != base
        assert _key(geom, reference_mode="btb") != base
        assert _key(geom, kind="coo") != base
        assert _key(geom, extra={"x": 1}) != base
        assert _key(ParallelBeamGeometry.for_image(SIZE + 2)) != base
        assert _key(ParallelBeamGeometry.for_image(SIZE, num_views=7)) != base

    def test_abi_bump_changes_key(self, geom, monkeypatch):
        import repro.kernels as kernels

        base = _key(geom)
        monkeypatch.setattr(kernels, "KERNELS_ABI_VERSION",
                            kernels.KERNELS_ABI_VERSION + 1)
        assert _key(geom) != base

    def test_geometry_signature_exact_floats(self, geom):
        sig = geometry_signature(geom)
        assert sig["class"] == "ParallelBeamGeometry"
        # floats are hex-encoded: two nearby values cannot collapse
        a = ParallelBeamGeometry(image_size=8, num_bins=12, num_views=4,
                                 delta_angle_deg=1.0)
        b = ParallelBeamGeometry(image_size=8, num_bins=12, num_views=4,
                                 delta_angle_deg=1.0 + 1e-15)
        assert geometry_signature(a) != geometry_signature(b)


# ---------------------------------------------------------------------- #
# store / load / counters


class TestStoreLoad:
    def test_miss_build_hit_counters(self, geom, cache):
        op1 = operator(geom, fmt="cscv-z", cache_obj=cache)
        st = cache.stats()
        assert st["misses"] >= 1 and st["stores"] == 2  # coo sweep + cscv-z
        assert st["hits"] == 0
        op2 = operator(geom, fmt="cscv-z", cache_obj=cache)
        st = cache.stats()
        assert st["hits"] == 1
        x = np.linspace(0, 1, op1.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(op1.forward(x), op2.forward(x))

    def test_bitwise_identical_spmv_spmm(self, geom, cache, rng):
        for fmt in ("cscv-z", "cscv-m"):
            fresh = operator(geom, fmt=fmt, cache=False)
            warm_src = operator(geom, fmt=fmt, cache_obj=cache)  # populates
            warm = operator(geom, fmt=fmt, cache_obj=cache)      # mmap load
            x = rng.random(fresh.shape[1]).astype(np.float32)
            X = np.ascontiguousarray(rng.random((fresh.shape[1], 3)),
                                     dtype=np.float32)
            np.testing.assert_array_equal(fresh.forward(x), warm.forward(x))
            np.testing.assert_array_equal(warm_src.forward(x), warm.forward(x))
            np.testing.assert_array_equal(fresh.fmt.spmm(X), warm.fmt.spmm(X))
            np.testing.assert_array_equal(fresh.adjoint(fresh.forward(x)),
                                          warm.adjoint(warm.forward(x)))

    def test_loaded_arrays_are_memory_mapped(self, geom, cache):
        operator(geom, fmt="cscv-z", cache_obj=cache)
        warm = operator(geom, fmt="cscv-z", cache_obj=cache)
        assert isinstance(warm.fmt.data.values, np.memmap)
        assert not warm.fmt.data.values.flags.writeable

    def test_disabled_cache_never_touches_disk(self, geom, tmp_path):
        c = OperatorCache(root=tmp_path / "off", enabled=False)
        fmt, cached = c.get_or_build(
            "deadbeef", CSCVZMatrix,
            lambda: operator(geom, cache=False).fmt,
        )
        assert not cached and not (tmp_path / "off").exists()
        assert c.load("deadbeef", CSCVZMatrix) is None

    def test_store_load_coo_roundtrip(self, geom, cache):
        coo, _ = build_ct_matrix(SIZE, geom=geom, dtype=np.float32)
        key = operator_key(geom=geom, fmt="coo", projector="strip",
                           dtype=np.float32, kind="coo")
        cache.store(key, coo)
        back = cache.load(key, COOMatrix)
        assert back is not None and back.shape == coo.shape
        x = np.linspace(0, 1, coo.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(coo.spmv(x), back.spmv(x))

    def test_json_roundtrip(self, cache):
        assert cache.load_json("a" * 32) is None
        cache.store_json("a" * 32, {"answer": 42})
        assert cache.load_json("a" * 32) == {"answer": 42}

    def test_wrong_kind_rejected(self):
        with pytest.raises(FormatError):
            CSCVMMatrix.from_cache_state({"kind": "coo"}, {})
        with pytest.raises(FormatError):
            COOMatrix.from_cache_state({"kind": "cscv"}, {})


# ---------------------------------------------------------------------- #
# corruption / eviction / LRU


class TestCorruptionAndEviction:
    def test_corrupt_values_evicted_and_rebuilt(self, geom, cache):
        op = operator(geom, fmt="cscv-z", cache_obj=cache)
        key = _key(geom, params=CSCVParams())
        entry = cache._entry_path(key)
        assert entry.is_dir()
        vals = entry / "values.npy"
        raw = bytearray(vals.read_bytes())
        raw[-1] ^= 0xFF
        vals.write_bytes(bytes(raw))
        op2 = operator(geom, fmt="cscv-z", cache_obj=cache)  # rebuilds
        st = cache.stats()
        assert st["corrupt"] >= 1 and st["evictions"] >= 1
        x = np.linspace(0, 1, op.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(op.forward(x), op2.forward(x))

    def test_missing_array_file_is_a_miss(self, geom, cache):
        operator(geom, fmt="cscv-z", cache_obj=cache)
        key = _key(geom, params=CSCVParams())
        (cache._entry_path(key) / "values.npy").unlink()
        assert cache.load(key, CSCVZMatrix) is None
        assert not cache._entry_path(key).exists()  # evicted

    def test_schema_mismatch_is_a_miss(self, geom, cache):
        operator(geom, fmt="cscv-z", cache_obj=cache)
        key = _key(geom, params=CSCVParams())
        ej = cache._entry_path(key) / "entry.json"
        entry = json.loads(ej.read_text())
        entry["schema"] = 999
        ej.write_text(json.dumps(entry))
        assert cache.load(key, CSCVZMatrix) is None

    def test_lru_prune_respects_protect(self, geom, cache):
        coo, _ = build_ct_matrix(SIZE, geom=geom, dtype=np.float32)
        keys = [f"{i:032x}" for i in range(3)]
        for k in keys:
            cache.store(k, coo)
            time.sleep(0.01)  # distinct stamp mtimes
        per_entry = cache.total_bytes() // 3
        cache.max_bytes = per_entry * 2
        evicted = cache.prune(protect={keys[0]})
        left = {e.key for e in cache.entries()}
        assert keys[0] in left            # protected despite being LRU
        assert evicted and evicted[0] == keys[1]

    def test_store_prunes_to_budget(self, geom, tmp_path):
        coo, _ = build_ct_matrix(SIZE, geom=geom, dtype=np.float32)
        c = OperatorCache(root=tmp_path / "tiny", enabled=True, max_bytes=1)
        c.store("b" * 32, coo)
        time.sleep(0.01)
        c.store("c" * 32, coo)
        left = {e.key for e in c.entries()}
        assert left == {"c" * 32}  # newest survives, LRU evicted

    def test_clear(self, geom, cache):
        operator(geom, fmt="cscv-z", cache_obj=cache)
        assert cache.clear() == 2
        assert cache.entries() == [] and cache.total_bytes() == 0


# ---------------------------------------------------------------------- #
# locking / concurrency


class TestLocking:
    def test_lock_is_exclusive_and_released(self, cache):
        with cache._lock("k1"):
            assert cache._lock_path("k1").exists()
        assert not cache._lock_path("k1").exists()

    def test_stale_lock_broken(self, cache):
        path = cache._lock_path("k2")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("0")
        old = time.time() - 3600
        os.utime(path, (old, old))
        t0 = time.monotonic()
        with cache._lock("k2", timeout=5.0):
            pass
        assert time.monotonic() - t0 < 2.0  # broke the stale lock, no wait

    def test_foreign_lock_taken_over_after_timeout(self, cache):
        path = cache._lock_path("k3")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("0")  # lock held by a process that stops refreshing
        t0 = time.monotonic()
        with cache._lock("k3", timeout=0.3):
            pass  # presumed-dead holder: lock broken and acquired
        assert 0.2 < time.monotonic() - t0 < 5.0
        assert not path.exists()  # ours after takeover: released

    def test_live_lock_times_out_and_proceeds(self, cache):
        path = cache._lock_path("k4")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("0")
        future = time.time() + 1000  # holder keeps refreshing: never stale
        os.utime(path, (future, future))
        t0 = time.monotonic()
        with cache._lock("k4", timeout=0.3):
            pass  # deadline reached: proceed unlocked (redundant build)
        assert 0.2 < time.monotonic() - t0 < 5.0
        assert path.exists()  # not ours: left in place

    def test_concurrent_warm_two_processes(self, tmp_path):
        root = tmp_path / "shared"
        code = (
            "import numpy as np;"
            "import repro;"
            "from repro.core.cache import OperatorCache;"
            f"c = OperatorCache(root={str(root)!r}, enabled=True);"
            f"op = repro.operator({SIZE}, cache_obj=c);"
            "x = np.linspace(0, 1, op.shape[1], dtype=np.float32);"
            "print(repr(float(op.forward(x).sum())))"
        )
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
        procs = [
            subprocess.Popen([sys.executable, "-c", code], env=env,
                             stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                             text=True)
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), outs
        assert outs[0][0] == outs[1][0]  # identical operator either way
        c = OperatorCache(root=root, enabled=True)
        assert {e.format for e in c.entries()} == {"coo", "cscv-z"}
        assert not (root / "locks").exists() or not any(
            (root / "locks").iterdir()
        )


# ---------------------------------------------------------------------- #
# facade


class TestOperatorFacade:
    def test_defaults(self, cache):
        op = operator(SIZE, cache_obj=cache)
        assert op.fmt.name == "cscv-z" and op.dtype == np.float32
        n = SIZE * SIZE
        assert op.shape[1] == n

    def test_geometry_and_num_views(self, cache):
        op = operator(SIZE, num_views=8, cache_obj=cache)
        g = ParallelBeamGeometry.for_image(SIZE, num_views=8)
        assert op.shape == g.shape
        with pytest.raises(ValidationError):
            operator(g, num_views=8)
        with pytest.raises(ValidationError):
            operator(3.14)

    def test_bad_names_are_validation_errors(self):
        with pytest.raises(ValidationError):
            operator(SIZE, fmt="nope", cache=False)
        with pytest.raises(ValidationError):
            operator(SIZE, projector="fan", cache=False)

    def test_non_cscv_formats(self, cache):
        op = operator(SIZE, fmt="csr", cache_obj=cache)
        op2 = operator(SIZE, fmt="csr", cache_obj=cache)
        x = np.linspace(0, 1, op.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(op.forward(x), op2.forward(x))
        assert cache.stats()["hits"] >= 1

    def test_shares_coo_sweep_across_formats(self, geom, cache):
        operator(geom, fmt="cscv-z", cache_obj=cache)
        before = cache.stats()["stores"]
        operator(geom, fmt="cscv-m", cache_obj=cache)
        st = cache.stats()
        assert st["stores"] == before + 1  # only the cscv-m entry is new
        kinds = sorted(e.format for e in cache.entries())
        assert kinds == ["coo", "cscv-m", "cscv-z"]

    def test_build_ct_matrix_backward_compat(self, geom):
        coo, g = build_ct_matrix(SIZE, geom=geom)
        assert g is geom and coo.shape == geom.shape
        assert coo.vals.dtype == np.float64  # legacy default preserved
        coo32, g32 = build_ct_matrix(SIZE, dtype=np.float32)
        assert coo32.vals.dtype == np.float32 and g32.shape == geom.shape

    def test_build_format_backward_compat(self, geom):
        coo, _ = build_ct_matrix(SIZE, geom=geom, dtype=np.float32)
        fmt = build_format("cscv-z", coo, geom=geom, params=CSCVParams(8, 8, 1))
        assert fmt.params.s_vvec == 8
        with pytest.raises(ValidationError):
            build_format("cscv-z", coo)

    def test_skipped_format_is_falsy_with_reason(self):
        s = SkippedFormat(reason="needs geom=")
        assert not s and "geom" in s.reason


# ---------------------------------------------------------------------- #
# io: atomic save + dir layout


class TestIOPersistence:
    def test_save_cscv_atomic_on_failure(self, geom, tmp_path, monkeypatch):
        from repro.core import io as cio

        fmt = operator(geom, cache=False).fmt
        target = tmp_path / "m.npz"
        cio.save_cscv(target, fmt.data)
        good = target.read_bytes()

        def boom(*a, **kw):
            raise OSError("disk full")

        monkeypatch.setattr(cio.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            cio.save_cscv(target, fmt.data)
        assert target.read_bytes() == good  # old file untouched
        assert list(tmp_path.glob("*.tmp*")) == []  # no droppings

    def test_save_load_cscv_dir_roundtrip(self, geom, tmp_path):
        from repro.core.io import load_cscv_dir, save_cscv_dir

        fmt = operator(geom, cache=False).fmt
        d = tmp_path / "entry"
        save_cscv_dir(d, fmt.data)
        back = load_cscv_dir(d)
        assert isinstance(back.values, np.memmap)
        np.testing.assert_array_equal(back.values, fmt.data.values)
        x = np.linspace(0, 1, fmt.shape[1], dtype=np.float32)
        np.testing.assert_array_equal(
            CSCVZMatrix(back).spmv(x), fmt.spmv(x)
        )
        with pytest.raises(FormatError):
            load_cscv_dir(tmp_path / "nowhere")


# ---------------------------------------------------------------------- #
# autotune persistence


class TestAutotunePersistence:
    def test_model_result_cached(self, geom, cache, monkeypatch):
        import repro.core.autotune as at
        import repro.core.cache as cc

        monkeypatch.setattr(cc, "default_cache", lambda: cache)
        monkeypatch.setattr(at, "parameter_sweep",
                            _counting(at.parameter_sweep))
        coo, _ = build_ct_matrix(SIZE, geom=geom, dtype=np.float32)
        kwargs = dict(scorer="model", s_vvec_grid=(4, 8), s_imgb_grid=(8,),
                      s_vxg_grid=(1,))
        a = at.autotune_parameters(coo, geom, **kwargs)
        b = at.autotune_parameters(coo, geom, **kwargs)
        assert at.parameter_sweep.calls == 1  # second run came from cache
        assert a.best_z == b.best_z and a.best_m == b.best_m
        assert len(b.points) == len(a.points)
        c = at.autotune_parameters(coo, geom, cache=False, **kwargs)
        assert at.parameter_sweep.calls == 2
        assert c.best_z == a.best_z


def _counting(fn):
    def wrapper(*a, **kw):
        wrapper.calls += 1
        return fn(*a, **kw)

    wrapper.calls = 0
    return wrapper
