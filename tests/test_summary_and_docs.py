"""Final integration: the run-everything summary, CLI solver paths, docs."""

from pathlib import Path

import numpy as np
import pytest


class TestSummaryExperiment:
    @pytest.mark.slow
    def test_summary_runs_every_experiment(self):
        from repro.bench.experiments import summary

        out = summary.run(full=False)
        for name in ("Table I", "Table IV (single)", "Fig 4", "Fig 10", "Fig 11"):
            assert name in out
        assert "FAILED" not in out


class TestCLIReconstruct:
    @pytest.mark.parametrize("solver", ["sirt", "cgls", "art", "fbp"])
    def test_each_solver(self, solver, capsys):
        from repro.cli import main

        assert main(["reconstruct", "--solver", solver, "--size", "16",
                     "--iterations", "5"]) == 0
        assert "relative error" in capsys.readouterr().out

    def test_calibrate_command(self, capsys):
        from repro.cli import main

        assert main(["calibrate"]) == 0
        assert "cscv-z" in capsys.readouterr().out


class TestDocumentation:
    REPO = Path(__file__).resolve().parent.parent

    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (self.REPO / name).is_file(), name

    def test_design_has_per_experiment_index(self):
        text = (self.REPO / "DESIGN.md").read_text()
        for token in ("Table I", "Fig 11", "bench_table4", "bench_fig10"):
            assert token in text

    def test_experiments_records_every_table_and_figure(self):
        text = (self.REPO / "EXPERIMENTS.md").read_text()
        for token in [f"Fig {i}" for i in range(1, 12)] + [
            "Table I", "Table II", "Table III", "Table IV",
        ]:
            assert token in text, token

    def test_walkthrough_code_blocks_reference_real_api(self):
        text = (self.REPO / "docs" / "cscv-walkthrough.md").read_text()
        # the names the doc tells users to import must exist
        import repro

        for name in ("build_ct_matrix", "CSCVZMatrix", "CSCVMMatrix", "CSCVParams"):
            assert name in text
            assert hasattr(repro, name)

    def test_every_bench_file_mentioned_in_design(self):
        design = (self.REPO / "DESIGN.md").read_text()
        for bench in sorted((self.REPO / "benchmarks").glob("bench_table*.py")):
            assert bench.name in design, bench.name

    def test_examples_are_runnable_scripts(self):
        import ast

        examples = sorted((self.REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        for path in examples:
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path.name} missing docstring"

    def test_public_modules_have_docstrings(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if "._" in info.name:
                continue
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"
