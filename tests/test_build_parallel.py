"""Parallel cold-build pipeline: C-kernel equivalence + determinism.

Covers the two layers of the parallel build:

* the view-range C projector kernels must emit the same matrix as the
  per-view NumPy projectors for every projector, parity of image size,
  and view count (including multi-chunk sweeps);
* ``build_cscv`` must produce bitwise-identical arrays — and therefore
  identical cache entries, file by file — for any worker count.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import config
from repro.core.builder import CSCVData, build_cscv
from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.geometry.fan_beam import FanBeamGeometry
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_fan import fan_strip_matrix
from repro.geometry.projector_pixel import pixel_driven_matrix
from repro.geometry.projector_siddon import siddon_matrix
from repro.geometry.projector_strip import strip_area_matrix
from repro.kernels import dispatch
from repro.sparse.coo import COOMatrix

_PROJECTORS = {
    "pixel": ("pixel_footprint_views", pixel_driven_matrix, False),
    "strip": ("strip_footprint_views", strip_area_matrix, False),
    "siddon": ("siddon_trace_views", siddon_matrix, False),
    "fan": ("fan_strip_views", fan_strip_matrix, True),
}


def _build_coo(name: str, size: int, views: int) -> COOMatrix:
    _, matrix_fn, is_fan = _PROJECTORS[name]
    geom = (FanBeamGeometry if is_fan else ParallelBeamGeometry).for_image(
        size, views
    )
    rows, cols, vals = matrix_fn(geom, dtype=np.float64)
    return COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=np.float64)


class TestCKernelEquivalence:
    """C view-range kernels vs the per-view NumPy projectors."""

    @pytest.mark.parametrize("name", sorted(_PROJECTORS))
    @pytest.mark.parametrize("size", [16, 17])
    @pytest.mark.parametrize("views", [1, 7, 64])
    def test_c_matches_numpy(self, name, size, views):
        kernel, _, _ = _PROJECTORS[name]
        if dispatch.get(kernel, np.float64) is None:
            pytest.skip("compiled backend unavailable")
        prev = config.runtime.backend
        try:
            config.runtime.backend = "c"
            c = _build_coo(name, size, views)
            config.runtime.backend = "numpy"
            py = _build_coo(name, size, views)
        finally:
            config.runtime.backend = prev
        # canonical COO: identical sparsity pattern, near-identical values
        assert c.nnz == py.nnz
        np.testing.assert_array_equal(c.rows, py.rows)
        np.testing.assert_array_equal(c.cols, py.cols)
        np.testing.assert_allclose(c.vals, py.vals, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_sweep_worker_count_invariant(self, workers):
        """The emitted COO stream never depends on the sweep chunking."""
        geom = ParallelBeamGeometry.for_image(24, 31)
        base = strip_area_matrix(geom, dtype=np.float64, workers=1)
        got = strip_area_matrix(geom, dtype=np.float64, workers=workers)
        for a, b in zip(base, got):
            np.testing.assert_array_equal(a, b)


class TestSiddonScaleGate:
    def test_numpy_only_above_cap_raises_validation_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.geometry.projector_siddon._NUMPY_PIXEL_CAP", 64
        )
        prev = config.runtime.backend
        try:
            config.runtime.backend = "numpy"
            geom = ParallelBeamGeometry.for_image(16, 4)  # 256 px > cap
            with pytest.raises(ValidationError, match="REPRO_BACKEND"):
                siddon_matrix(geom)
        finally:
            config.runtime.backend = prev

    def test_compiled_backend_lifts_cap(self, monkeypatch):
        if dispatch.get("siddon_trace_views", np.float64) is None:
            pytest.skip("compiled backend unavailable")
        monkeypatch.setattr(
            "repro.geometry.projector_siddon._NUMPY_PIXEL_CAP", 64
        )
        geom = ParallelBeamGeometry.for_image(16, 4)
        rows, _, _ = siddon_matrix(geom)
        assert rows.size > 0


class TestBuildDeterminism:
    """build_cscv output is bitwise-identical for any worker count."""

    def _arrays(self, data: CSCVData) -> dict[str, np.ndarray]:
        return {
            f.name: getattr(data, f.name)
            for f in dataclasses.fields(CSCVData)
            if isinstance(getattr(data, f.name), np.ndarray)
        }

    @pytest.mark.parametrize("reference_mode", ["ioblr", "btb"])
    def test_bitwise_identical_across_workers(self, fine_ct, reference_mode):
        coo, geom = fine_ct
        params = CSCVParams(16, 16, 2)
        base = build_cscv(
            coo.rows, coo.cols, coo.vals, geom, params, np.float32,
            reference_mode=reference_mode, workers=1,
        )
        ref = self._arrays(base)
        for workers in (2, 8):
            data = build_cscv(
                coo.rows, coo.cols, coo.vals, geom, params, np.float32,
                reference_mode=reference_mode, workers=workers,
            )
            got = self._arrays(data)
            assert got.keys() == ref.keys()
            for name, arr in got.items():
                assert arr.dtype == ref[name].dtype, name
                np.testing.assert_array_equal(arr, ref[name], err_msg=name)

    def test_env_knob_feeds_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "3")
        assert config.env_build_workers() == 3
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "0")
        with pytest.raises(ValueError):
            config.env_build_workers()

    def test_cache_entries_identical_across_workers(self, tmp_path):
        """Same cache key AND same per-file sha256 for every worker count."""
        from repro.api import operator
        from repro.core.cache import OperatorCache

        manifests = {}
        for workers in (1, 2, 8):
            cache = OperatorCache(root=tmp_path / f"w{workers}", enabled=True)
            operator(
                24, fmt="cscv-z", params=CSCVParams(8, 8, 2),
                dtype=np.float32, cache_obj=cache, build_workers=workers,
            )
            entries = {}
            for entry_dir in sorted((cache.root / "entries").iterdir()):
                meta = json.loads((entry_dir / "entry.json").read_text())
                entries[meta["key"]] = {
                    name: info["sha256"]
                    for name, info in meta["files"].items()
                }
            manifests[workers] = entries
        assert manifests[1] == manifests[2] == manifests[8]
        assert manifests[1]  # at least the coo + cscv-z entries exist


class TestSharedPoolResize:
    def test_pool_shrinks_when_ceiling_drops(self):
        from repro.utils.pool import SharedPool

        limit = {"n": 4}
        pool = SharedPool("test-shrink", lambda: limit["n"])
        try:
            pool.get(4)
            assert pool.size == 4
            limit["n"] = 1
            pool.get(1)  # ceiling lowered at runtime -> recreate smaller
            assert pool.size == 1
        finally:
            pool.shutdown()

    def test_spmv_pool_tracks_lowered_threads(self):
        from repro.core import spmv as spmv_mod
        from repro.utils.pool import spmv_pool

        prev = config.runtime.threads
        try:
            config.runtime.threads = 4
            spmv_pool.shutdown()
            spmv_mod._shared_pool(4)
            assert spmv_pool.size == 4
            config.runtime.threads = 2
            spmv_mod._shared_pool(2)
            assert spmv_pool.size == 2
        finally:
            config.runtime.threads = prev
            spmv_pool.shutdown()
