"""Crash-safe serving tests: checkpoint/resume bitwise identity, the
durable job journal, graceful drain and restart recovery.

The load-bearing invariant everywhere: a run that is interrupted and
resumed from a checkpoint produces output **bitwise-identical** to the
run that was never interrupted — compared array-for-array, not to a
tolerance.
"""

import json
import os
import time

import numpy as np
import pytest

import repro
from repro import api
from repro.errors import FormatError, ValidationError
from repro.geometry import ParallelBeamGeometry
from repro.geometry.phantom import shepp_logan
from repro.recon.checkpoint import (
    CheckpointState,
    CheckpointWriter,
    column_state,
    load_checkpoint,
    save_checkpoint,
    solver_params_hash,
)

SIZE = 24


@pytest.fixture(scope="module")
def geom():
    return ParallelBeamGeometry.for_image(SIZE)


@pytest.fixture(scope="module")
def op(geom):
    return repro.operator(geom)


@pytest.fixture(scope="module")
def sino(op):
    truth = shepp_logan(SIZE).ravel().astype(op.dtype)
    return op.forward(truth)


@pytest.fixture(scope="module")
def sino_stack(op, sino):
    rng = np.random.default_rng(11)
    cols = [sino] + [
        (sino + rng.normal(0.0, 0.02 * sino.std(), sino.shape)
         .astype(sino.dtype))
        for _ in range(2)
    ]
    return np.stack(cols, axis=1)


SOLVER_CASES = [
    ("sirt", {"iterations": 12, "relax": 1.2}),
    ("cgls", {"iterations": 12, "damping": 1e-3}),
    ("os-sart", {"iterations": 10, "num_subsets": 4}),
]


def capture_checkpoint(at_k):
    """Event callback capturing the solver state after iteration *at_k*."""
    box = {}

    def cb(event):
        if event.k == at_k:
            assert event.state_provider is not None
            box["state"] = CheckpointState(
                solver=event.solver, k=event.k, params_hash="",
                arrays=event.state_provider(), residuals=(),
            )

    cb.accepts_events = True
    return box, cb


class TestResumeBitwise:
    @pytest.mark.parametrize("solver,params", SOLVER_CASES)
    @pytest.mark.parametrize("at_k", [1, 7])
    def test_resume_matches_uninterrupted(
        self, op, geom, sino, solver, params, at_k
    ):
        box, cb = capture_checkpoint(at_k)
        full = api.reconstruct(
            op, sino, solver=solver, geom=geom, callback=cb, **params
        )
        resumed = api.reconstruct(
            op, sino, solver=solver, geom=geom,
            resume_from=box["state"], **params,
        )
        assert resumed.image.dtype == full.image.dtype
        assert np.array_equal(resumed.image, full.image)
        assert resumed.iterations == full.iterations
        assert resumed.stop_reason == full.stop_reason

    @pytest.mark.parametrize("solver,params", SOLVER_CASES)
    def test_resume_roundtrips_through_disk(
        self, op, geom, sino, solver, params, tmp_path
    ):
        box, cb = capture_checkpoint(3)
        full = api.reconstruct(
            op, sino, solver=solver, geom=geom, callback=cb, **params
        )
        path = tmp_path / "state.ckpt"
        save_checkpoint(box["state"], path)
        loaded = load_checkpoint(path)
        assert loaded.k == 3
        resumed = api.reconstruct(
            op, sino, solver=solver, geom=geom, resume_from=loaded, **params
        )
        assert np.array_equal(resumed.image, full.image)

    @pytest.mark.parametrize("solver,params", SOLVER_CASES)
    def test_batched_checkpoint_column_resumes_solo(
        self, op, geom, sino_stack, solver, params
    ):
        # a job coalesced into a batch can be recovered solo: slice its
        # column out of the batched checkpoint and finish alone
        box, cb = capture_checkpoint(4)
        api.reconstruct(
            op, sino_stack, solver=solver, geom=geom, callback=cb, **params
        )
        j = 1
        solo = api.reconstruct(
            op, sino_stack[:, j], solver=solver, geom=geom, **params
        )
        resumed = api.reconstruct(
            op, sino_stack[:, j], solver=solver, geom=geom,
            resume_from=column_state(box["state"], j), **params,
        )
        assert np.array_equal(resumed.image, solo.image)

    def test_resume_history_and_residuals_continue(self, op, geom, sino):
        box, cb = capture_checkpoint(5)
        full = api.reconstruct(
            op, sino, solver="sirt", geom=geom, callback=cb, iterations=9
        )
        resumed = api.reconstruct(
            op, sino, solver="sirt", geom=geom,
            resume_from=box["state"], iterations=9,
        )
        # post-resume history picks up at k=6 with the same norms
        assert [e.k for e in resumed.history] == [6, 7, 8]
        np.testing.assert_array_equal(
            [e.norm for e in resumed.history],
            [e.norm for e in full.history[6:]],
        )


class TestResumeValidation:
    def test_solver_mismatch_rejected(self, op, geom, sino):
        box, cb = capture_checkpoint(2)
        api.reconstruct(op, sino, solver="sirt", callback=cb, iterations=4)
        with pytest.raises(ValidationError, match="checkpoint"):
            api.reconstruct(
                op, sino, solver="cgls", resume_from=box["state"],
                iterations=4,
            )

    def test_params_hash_mismatch_rejected(self, op, geom, sino):
        box, cb = capture_checkpoint(2)
        res = api.reconstruct(
            op, sino, solver="sirt", callback=cb, iterations=6
        )
        state = box["state"]
        stamped = CheckpointState(
            solver=state.solver, k=state.k,
            params_hash=solver_params_hash("sirt", res.params),
            arrays=state.arrays, residuals=state.residuals,
        )
        # same parameterisation resumes fine
        api.reconstruct(
            op, sino, solver="sirt", resume_from=stamped, iterations=6
        )
        with pytest.raises(ValidationError, match="parameterisation"):
            api.reconstruct(
                op, sino, solver="sirt", resume_from=stamped,
                iterations=6, relax=0.7,
            )

    def test_x0_and_watchdog_rejected(self, op, geom, sino):
        box, cb = capture_checkpoint(2)
        api.reconstruct(op, sino, solver="sirt", callback=cb, iterations=4)
        state = box["state"]
        with pytest.raises(ValidationError, match="x0"):
            api.reconstruct(
                op, sino, solver="sirt", resume_from=state,
                x0=np.zeros(op.shape[1], dtype=op.dtype), iterations=4,
            )
        with pytest.raises(ValidationError, match="watchdog"):
            api.reconstruct(
                op, sino, solver="sirt", resume_from=state,
                watchdog=True, iterations=4,
            )

    def test_unsupporting_solver_rejected(self, op, geom, sino):
        box, cb = capture_checkpoint(1)
        api.reconstruct(op, sino, solver="sirt", callback=cb, iterations=3)
        with pytest.raises(ValidationError, match="resume"):
            api.reconstruct(
                op, sino, solver="art", resume_from=box["state"],
                iterations=3,
            )

    def test_wrong_shape_rejected(self, op, geom, sino):
        bad = CheckpointState(
            solver="sirt", k=1, params_hash="",
            arrays={"x": np.zeros((3, 1), dtype=op.dtype)},
        )
        with pytest.raises(ValidationError, match="shape"):
            api.reconstruct(
                op, sino, solver="sirt", resume_from=bad, iterations=4
            )


class TestCheckpointIO:
    def test_corrupt_file_raises_format_error(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(FormatError, match="corrupt"):
            load_checkpoint(path)

    def test_truncated_file_raises_format_error(self, tmp_path, op, geom, sino):
        box, cb = capture_checkpoint(1)
        api.reconstruct(op, sino, solver="sirt", callback=cb, iterations=3)
        path = tmp_path / "trunc.ckpt"
        save_checkpoint(box["state"], path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(FormatError):
            load_checkpoint(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_writer_cadence_and_force(self, op, geom, sino, tmp_path):
        path = tmp_path / "writer.ckpt"
        writer = CheckpointWriter(path, every=4)
        api.reconstruct(
            op, sino, solver="sirt", callback=writer, iterations=10
        )
        # iterations 0..9: cadence hits after k=3 and k=7
        assert writer.stored == 2
        assert load_checkpoint(path).k == 7
        assert len(writer.residuals) == 10
        state = writer.store()  # forced (drain path)
        assert state is not None and state.k == 9
        assert load_checkpoint(path).k == 9

    def test_writer_store_failure_degrades(self, op, geom, sino, tmp_path):
        from repro.resilience import faults

        path = tmp_path / "faulty.ckpt"
        writer = CheckpointWriter(path, every=2)
        with faults.inject("ckpt.store:enospc"):
            res = api.reconstruct(
                op, sino, solver="sirt", callback=writer, iterations=6
            )
        assert res.iterations == 6  # the solve itself survived
        assert writer.stored == 0
        assert writer.errors == 3
        assert not path.exists()
        # in-memory state is still good for an in-process resume
        assert writer.last_state is not None


class TestDurableWrites:
    def test_write_bytes_durable_atomic(self, tmp_path):
        from repro.utils import write_bytes_durable

        path = tmp_path / "doc.bin"
        write_bytes_durable(path, b"one")
        write_bytes_durable(path, b"two")
        assert path.read_bytes() == b"two"
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_write_json_durable(self, tmp_path):
        from repro.utils import write_json_durable

        path = tmp_path / "doc.json"
        write_json_durable(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_replace_durable(self, tmp_path):
        from repro.utils import replace_durable

        tmp = tmp_path / "stage.tmp"
        tmp.write_bytes(b"payload")
        dst = tmp_path / "final"
        replace_durable(tmp, dst)
        assert dst.read_bytes() == b"payload"
        assert not tmp.exists()


# --------------------------------------------------------------------- #
# the durable job journal


from repro.serve.journal import JobJournal  # noqa: E402


class TestJournal:
    def test_missing_journal_is_clean(self, tmp_path):
        replay = JobJournal(tmp_path / "j").replay()
        assert replay.clean_shutdown
        assert replay.records == 0
        assert not replay.jobs

    def test_replay_round_trip(self, tmp_path):
        j = JobJournal(tmp_path / "j")
        ref = j.spill_array(np.arange(6, dtype=np.float32))
        j.log_submit("job-000001", {"solver": "sirt"}, ref, None)
        j.log_submit("job-000002", {"solver": "cgls"}, ref, "key-a")
        j.log_start("job-000001", batch_id=1, batch_width=1)
        j.log_finish("job-000001", "done", result_ref=ref, iterations=5,
                     stop_reason="max_iterations")
        j.log_shutdown()
        replay = j.replay()
        assert replay.clean_shutdown
        assert replay.records == 5
        assert replay.max_job_num == 2
        a, b = replay.jobs["job-000001"], replay.jobs["job-000002"]
        assert not a.live and a.state == "done" and a.iterations == 5
        assert a.result_ref == ref and a.stop_reason == "max_iterations"
        assert b.live and b.state == "queued"
        assert b.idempotency_key == "key-a"
        assert replay.live_jobs() == [b]

    def test_duplicate_idempotency_submits_collapse(self, tmp_path):
        j = JobJournal(tmp_path / "j")
        ref = j.spill_array(np.ones(3))
        j.log_submit("job-000001", {}, ref, "idem-1")
        j.log_submit("job-000002", {}, ref, "idem-1")  # replayed duplicate
        j.log_finish("job-000002", "done", iterations=3)
        replay = j.replay()
        assert replay.duplicates == 1
        assert list(replay.jobs) == ["job-000001"]
        # the duplicate's finish routed to the canonical job
        assert replay.jobs["job-000001"].state == "done"

    def test_corrupt_tail_tolerated(self, tmp_path):
        j = JobJournal(tmp_path / "j")
        ref = j.spill_array(np.ones(3))
        j.log_submit("job-000001", {}, ref, None)
        j.close()
        with open(j.path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "finish", "job_id": "job-0000')  # torn write
        replay = j.replay()
        assert replay.records == 1
        assert replay.dropped == 1
        assert not replay.clean_shutdown
        assert replay.jobs["job-000001"].live  # the finish never took

    def test_spill_dedup_and_content_check(self, tmp_path):
        j = JobJournal(tmp_path / "j")
        arr = np.arange(8, dtype=np.float64)
        ref = j.spill_array(arr)
        assert j.spill_array(arr.copy()) == ref  # content-addressed dedup
        assert len(list(j.payload_dir.glob("*.npy"))) == 1
        np.testing.assert_array_equal(j.load_array(ref), arr)
        (j.payload_dir / f"{ref}.npy").write_bytes(b"garbage")
        with pytest.raises(ValueError, match="content check"):
            j.load_array(ref)
        with pytest.raises(OSError):
            j.load_array("0" * 64)

    def test_compact_keeps_live_drops_terminal_and_gcs(self, tmp_path):
        j = JobJournal(tmp_path / "j")
        live_ref = j.spill_array(np.ones(3))
        dead_ref = j.spill_array(np.zeros(4))
        j.log_submit("job-000001", {"a": 1}, live_ref, "k1")
        j.log_submit("job-000002", {}, dead_ref, None)
        j.log_finish("job-000002", "done")
        j.checkpoint_path("job-000001").write_bytes(b"x")
        j.checkpoint_path("job-000002").write_bytes(b"x")
        out = j.compact(j.replay())
        assert out == {"kept": 1, "payloads_removed": 1,
                       "checkpoints_removed": 1}
        replay = j.replay()
        assert list(replay.jobs) == ["job-000001"]
        rj = replay.jobs["job-000001"]
        assert rj.live and rj.idempotency_key == "k1"
        assert rj.payload == {"a": 1}
        assert j.checkpoint_path("job-000001").exists()
        assert not j.checkpoint_path("job-000002").exists()

    def test_append_and_fsync_fault_sites(self, tmp_path):
        from repro.resilience import faults

        j = JobJournal(tmp_path / "j")
        with faults.inject("journal.append:oserror"):
            with pytest.raises(OSError):
                j.log_submit("job-000001", {}, "ref", None)
        with faults.inject("journal.fsync:oserror"):
            with pytest.raises(OSError):
                j.log_submit("job-000002", {}, "ref", None)
        j.log_submit("job-000003", {}, "ref", None)  # healthy again
        assert "job-000003" in j.replay().jobs


# --------------------------------------------------------------------- #
# service-level: journaling, idempotency, drain, restart recovery


from repro.serve import ServiceRunner, ServiceUnavailableError  # noqa: E402
from repro.serve.jobs import encode_array  # noqa: E402
from repro.serve.service import ServeConfig  # noqa: E402


def serve_payload(sino, *, iterations=6, solver="sirt", **extra):
    out = {
        "solver": solver,
        "params": {"iterations": iterations},
        "geometry": {"size": SIZE},
        "sinogram": encode_array(sino),
    }
    out.update(extra)
    return out


class TestServiceRecovery:
    def test_idempotent_resubmit_same_session(self, sino, tmp_path):
        cfg = ServeConfig(workers=1, journal_dir=str(tmp_path / "j"))
        with ServiceRunner(cfg) as runner:
            assert runner.wait_ready(10)
            a = runner.submit(serve_payload(sino, idempotency_key="once"))
            b = runner.submit(serve_payload(sino, idempotency_key="once"))
            assert a.id == b.id

    def test_finished_job_survives_restart(self, op, geom, sino, tmp_path):
        jd = str(tmp_path / "j")
        pay = serve_payload(sino, idempotency_key="surv-1")
        with ServiceRunner(ServeConfig(workers=1, journal_dir=jd)) as runner:
            assert runner.wait_ready(10)
            job = runner.wait(runner.submit(pay).id, timeout=60)
            assert job.state == "done"
            jid, ref = job.id, job.result.copy()
        with ServiceRunner(ServeConfig(workers=1, journal_dir=jd)) as runner:
            assert runner.wait_ready(10)
            rec = runner.stats()["recovery"]
            assert rec["state"] == "done" and rec["restored"] == 1
            restored = runner.get_job(jid)
            assert restored is not None and restored.state == "done"
            assert np.array_equal(restored.result, ref)
            # the idempotency index survives the restart too
            assert runner.submit(pay).id == jid

    def test_queued_job_completes_after_restart_bitwise(
        self, op, geom, sino, tmp_path
    ):
        jd = str(tmp_path / "j")
        runner = ServiceRunner(
            ServeConfig(workers=1, journal_dir=jd)
        ).start(run_scheduler=False)
        assert runner.wait_ready(10)
        job = runner.submit(serve_payload(sino, iterations=7))
        jid = job.id
        runner.stop()
        # stop() failed it retryable; the journal still holds it pending
        assert job.state == "failed"
        assert job.error["error"] == "shutdown"
        assert job.error["retryable"] is True
        with ServiceRunner(ServeConfig(workers=1, journal_dir=jd)) as runner:
            assert runner.wait_ready(10)
            assert runner.stats()["recovery"]["restarted"] == 1
            job = runner.wait(jid, timeout=60)
            assert job.state == "done"
        direct = api.reconstruct(op, sino, solver="sirt", geom=geom,
                                 iterations=7)
        assert np.array_equal(job.result, direct.image)

    def test_drain_suspends_then_resumes_bitwise(
        self, op, geom, sino, tmp_path
    ):
        jd = str(tmp_path / "j")
        iters = 600
        cfg = ServeConfig(workers=1, journal_dir=jd, ckpt_every=2,
                          batch_window_s=0.0)
        runner = ServiceRunner(cfg).start()
        assert runner.wait_ready(10)
        job = runner.submit(serve_payload(sino, iterations=iters))
        jid = job.id
        deadline = time.monotonic() + 30.0
        while not job.progress and time.monotonic() < deadline:
            time.sleep(0.002)
        assert job.progress, "solve never started"
        summary = runner.drain(timeout=20.0)
        assert summary["drained"] and summary["clean"]
        assert summary["suspended"] == 1
        assert job.state == "queued"  # mid-flight, checkpointed, re-queued
        runner.stop()
        with ServiceRunner(ServeConfig(workers=1, journal_dir=jd)) as runner:
            assert runner.wait_ready(10)
            rec = runner.stats()["recovery"]
            assert rec["resumed"] == 1
            job = runner.wait(jid, timeout=120)
            assert job.state == "done"
            assert job.iterations == iters
        direct = api.reconstruct(op, sino, solver="sirt", geom=geom,
                                 iterations=iters)
        assert np.array_equal(job.result, direct.image)

    def test_unrecoverable_job_fails_structured(self, sino, tmp_path):
        jd = tmp_path / "j"
        runner = ServiceRunner(
            ServeConfig(workers=1, journal_dir=str(jd))
        ).start(run_scheduler=False)
        assert runner.wait_ready(10)
        jid = runner.submit(serve_payload(sino)).id
        runner.stop()
        for p in (jd / "payloads").glob("*.npy"):
            p.unlink()  # the sinogram payload is gone for good
        with ServiceRunner(ServeConfig(workers=1, journal_dir=str(jd))) as runner:
            assert runner.wait_ready(10)
            assert runner.stats()["recovery"]["failed"] == 1
            job = runner.get_job(jid)
            assert job is not None and job.state == "failed"
            assert job.error["error"] == "unrecoverable"
            assert job.error["retryable"] is True
        # compaction dropped it: the next boot doesn't retry it forever
        with ServiceRunner(ServeConfig(workers=1, journal_dir=str(jd))) as runner:
            assert runner.wait_ready(10)
            rec = runner.stats()["recovery"]
            assert rec["failed"] == 0
            assert runner.get_job(jid) is None


class TestDrainAndReadiness:
    def test_drain_rejects_submits_http_and_embedded(self, sino):
        import urllib.error
        import urllib.request

        from repro.serve import serve_http

        runner = ServiceRunner(ServeConfig(workers=1)).start()
        server = serve_http(runner)
        url = f"http://127.0.0.1:{server.port}"
        try:
            assert runner.ready
            with urllib.request.urlopen(url + "/readyz", timeout=10) as resp:
                assert resp.status == 200
            summary = runner.drain(timeout=5.0)
            assert summary["drained"] and summary["clean"]
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(url + "/readyz", timeout=10)
            assert ei.value.code == 503
            body = json.loads(ei.value.read())
            assert body["ready"] is False and body["draining"] is True
            req = urllib.request.Request(
                url + "/v1/reconstruct",
                data=json.dumps(serve_payload(sino)).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(req, timeout=10)
            assert ei.value.code == 503
            assert float(ei.value.headers["Retry-After"]) > 0
            body = json.loads(ei.value.read())
            assert body["error"] == "unavailable"
            assert body["reason"] == "draining"
            assert body["retryable"] is True
            with pytest.raises(ServiceUnavailableError):
                runner.submit(serve_payload(sino))
        finally:
            server.stop()
            runner.stop()


class TestChaosDurability:
    def test_journal_faults_degrade_not_fail(self, sino, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.resilience import faults

        cfg = ServeConfig(workers=1, journal_dir=str(tmp_path / "j"),
                          batch_window_s=0.0)
        before = obs_metrics.counter(
            "serve.journal.errors",
            "journal persistence failures (service degraded)",
        ).value
        with faults.inject("journal.append:oserror:every=2"):
            with ServiceRunner(cfg) as runner:
                assert runner.wait_ready(10)
                job = runner.wait(
                    runner.submit(serve_payload(sino, iterations=4)).id,
                    timeout=60,
                )
                assert job.state == "done"
        after = obs_metrics.counter(
            "serve.journal.errors",
            "journal persistence failures (service degraded)",
        ).value
        assert after > before

    def test_ckpt_faults_do_not_break_the_solve(self, op, geom, sino, tmp_path):
        from repro.resilience import faults

        cfg = ServeConfig(workers=1, journal_dir=str(tmp_path / "j"),
                          ckpt_every=1, batch_window_s=0.0)
        with faults.inject("ckpt.store:enospc"):
            with ServiceRunner(cfg) as runner:
                assert runner.wait_ready(10)
                job = runner.wait(
                    runner.submit(serve_payload(sino, iterations=5)).id,
                    timeout=60,
                )
                assert job.state == "done"
        direct = api.reconstruct(op, sino, solver="sirt", geom=geom,
                                 iterations=5)
        assert np.array_equal(job.result, direct.image)


# --------------------------------------------------------------------- #
# kill -9 mid-iteration -> restart --recover -> bitwise completion


_CRASH_SCRIPT = """
import sys
import numpy as np
import repro
from repro.geometry import ParallelBeamGeometry
from repro.geometry.phantom import shepp_logan
from repro.serve import ServiceRunner
from repro.serve.service import ServeConfig
from repro.serve.jobs import encode_array

SIZE = 24
geom = ParallelBeamGeometry.for_image(SIZE)
op = repro.operator(geom)
truth = shepp_logan(SIZE).ravel().astype(op.dtype)
sino = op.forward(truth)
runner = ServiceRunner(ServeConfig(
    workers=1, journal_dir=sys.argv[1], ckpt_every=2, batch_window_s=0.0,
)).start()
assert runner.wait_ready(60)
job = runner.submit({
    "solver": "sirt",
    "params": {"iterations": 40},
    "geometry": {"size": SIZE},
    "sinogram": encode_array(sino),
})
runner.wait(job.id, timeout=120)
print("UNEXPECTED: completed without crashing", job.state)
sys.exit(3)
"""


class TestCrashRecovery:
    def test_kill9_restart_recover_bitwise(self, op, geom, sino, tmp_path):
        import subprocess
        import sys as _sys

        jd = str(tmp_path / "journal")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        # die (os._exit 137, as uncatchable as kill -9) at the 11th
        # solver iteration -- right after the k=9 checkpoint landed
        env["REPRO_FAULTS"] = "serve.crash:exit:after=10"
        proc = subprocess.run(
            [_sys.executable, "-c", _CRASH_SCRIPT, jd],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 137, (
            f"expected the injected crash (exit 137), got "
            f"{proc.returncode}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
        with ServiceRunner(ServeConfig(workers=1, journal_dir=jd)) as runner:
            assert runner.wait_ready(30)
            rec = runner.stats()["recovery"]
            assert rec["clean_shutdown"] is False  # it really crashed
            assert rec["resumed"] == 1
            job = runner.wait("job-000001", timeout=120)
            assert job.state == "done"
            assert job.iterations == 40
            result = job.result.copy()
        direct = api.reconstruct(op, sino, solver="sirt", geom=geom,
                                 iterations=40)
        assert np.array_equal(result, direct.image)
