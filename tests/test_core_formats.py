"""Tests for the CSCV-Z / CSCV-M execution formats: SpMV correctness,
transpose, memory model, threading — under both backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.core.spmv import spmv_m, spmv_z
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="module")
def setup(fine_ct):
    coo, geom = fine_ct
    csr = CSRMatrix.from_coo_matrix(coo)
    rng = np.random.default_rng(7)
    x = rng.random(coo.shape[1]).astype(np.float32)
    y_ref = csr.spmv(x)
    return coo, geom, x, y_ref


PARAM_GRID = [
    CSCVParams(4, 8, 1),
    CSCVParams(8, 8, 2),
    CSCVParams(8, 16, 4),
    CSCVParams(16, 16, 2),
    CSCVParams(16, 12, 3),
    CSCVParams(32, 8, 1),
    CSCVParams(1, 4, 1),
    CSCVParams(5, 7, 2),   # non-power-of-two everything
]


@pytest.mark.parametrize("params", PARAM_GRID, ids=str)
class TestSpMVCorrectness:
    def test_z_matches_csr(self, setup, params, backend):
        coo, geom, x, y_ref = setup
        z = CSCVZMatrix.from_ct(coo, geom, params)
        rel = np.abs(z.spmv(x) - y_ref).max() / np.abs(y_ref).max()
        assert rel < 5e-6

    def test_m_matches_csr(self, setup, params, backend):
        coo, geom, x, y_ref = setup
        m = CSCVMMatrix.from_ct(coo, geom, params)
        rel = np.abs(m.spmv(x) - y_ref).max() / np.abs(y_ref).max()
        assert rel < 5e-6


class TestSharedData:
    def test_z_and_m_share_arrays(self, setup):
        coo, geom, x, _ = setup
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        m = CSCVMMatrix.from_data(z.data)
        assert m.data is z.data
        np.testing.assert_allclose(z.spmv(x), m.spmv(x), rtol=1e-6)

    def test_r_nnze_identical(self, setup):
        coo, geom, _, _ = setup
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        m = CSCVMMatrix.from_data(z.data)
        assert z.r_nnze == m.r_nnze


class TestDoublePrecision:
    def test_f64_exact_vs_csr(self, fine_ct, backend):
        coo32, geom = fine_ct
        coo = coo32.astype(np.float64)
        rng = np.random.default_rng(3)
        x = rng.random(coo.shape[1])
        y_ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
        for cls in (CSCVZMatrix, CSCVMMatrix):
            fmt = cls.from_ct(coo, geom, CSCVParams(8, 8, 2))
            np.testing.assert_allclose(fmt.spmv(x), y_ref, rtol=1e-12, atol=1e-12)


class TestTranspose:
    def test_z_transpose(self, setup):
        coo, geom, _, _ = setup
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        rng = np.random.default_rng(5)
        y = rng.random(coo.shape[0]).astype(np.float32)
        expected = coo.to_dense().T.astype(np.float64) @ y.astype(np.float64)
        got = z.transpose_spmv(y)
        rel = np.abs(got - expected).max() / np.abs(expected).max()
        assert rel < 5e-6

    def test_m_transpose(self, setup):
        coo, geom, _, _ = setup
        m = CSCVMMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        rng = np.random.default_rng(5)
        y = rng.random(coo.shape[0]).astype(np.float32)
        expected = coo.to_dense().T.astype(np.float64) @ y.astype(np.float64)
        rel = np.abs(m.transpose_spmv(y) - expected).max() / np.abs(expected).max()
        assert rel < 5e-6

    def test_adjoint_identity(self, setup):
        # <Ax, y> == <x, A^T y> — the defining adjoint property
        coo, geom, x, _ = setup
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 16, 2))
        rng = np.random.default_rng(11)
        y = rng.random(coo.shape[0]).astype(np.float32)
        lhs = float(z.spmv(x).astype(np.float64) @ y.astype(np.float64))
        rhs = float(x.astype(np.float64) @ z.transpose_spmv(y).astype(np.float64))
        assert lhs == pytest.approx(rhs, rel=1e-5)


class TestThreading:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_thread_count_invariance_z(self, setup, threads):
        coo, geom, x, y_ref = setup
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 8, 2),
                          np.float32)
        y = np.zeros(coo.shape[0], dtype=np.float32)
        spmv_z(data, x, y, threads=threads)
        rel = np.abs(y - y_ref).max() / np.abs(y_ref).max()
        assert rel < 5e-6

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_thread_count_invariance_m(self, setup, threads):
        coo, geom, x, y_ref = setup
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 8, 2),
                          np.float32)
        y = np.zeros(coo.shape[0], dtype=np.float32)
        spmv_m(data, x, y, threads=threads)
        rel = np.abs(y - y_ref).max() / np.abs(y_ref).max()
        assert rel < 5e-6


class TestMemoryModel:
    def test_m_streams_less_than_z(self, setup):
        coo, geom, _, _ = setup
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 16, 2))
        m = CSCVMMatrix.from_data(z.data)
        assert m.memory_bytes()["total"] < z.memory_bytes()["total"]
        assert m.traffic_saving_vs_z() > 0.0

    def test_index_compression_vs_csc(self, setup):
        # paper: VxG index volume ~0.03x of CSC... at realistic scale the
        # map adds overhead; assert it is well below half of CSC's indices
        coo, geom, _, _ = setup
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(16, 16, 4))
        assert z.index_compression_vs_csc() < 0.5

    def test_m_values_exactly_nnz(self, setup):
        coo, geom, _, _ = setup
        m = CSCVMMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        assert m.memory_bytes()["values"] == coo.nnz * 4


class TestConstructionErrors:
    def test_shape_mismatch(self, setup):
        coo, _, _, _ = setup
        wrong = ParallelBeamGeometry(image_size=8, num_bins=13, num_views=4,
                                     delta_angle_deg=1.0)
        with pytest.raises(ValidationError):
            CSCVZMatrix.from_ct(coo, wrong)

    def test_from_coo_requires_geom(self, setup):
        coo, _, _, _ = setup
        with pytest.raises(ValidationError):
            CSCVZMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals)

    def test_from_coo_with_geom(self, setup):
        coo, geom, x, y_ref = setup
        z = CSCVZMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, geom=geom)
        rel = np.abs(z.spmv(x) - y_ref).max() / np.abs(y_ref).max()
        assert rel < 5e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), s_vvec=st.sampled_from([4, 8, 16]))
def test_property_random_x_agreement(seed, s_vvec):
    """Z and M agree with COO on random inputs, including negatives/zeros."""
    geom = ParallelBeamGeometry(image_size=10, num_bins=16, num_views=12,
                                delta_angle_deg=5.0)
    from repro.geometry.projector_strip import strip_area_matrix

    rows, cols, vals = strip_area_matrix(geom)
    coo = COOMatrix.from_coo(geom.shape, rows, cols, vals)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(coo.shape[1])
    x[rng.random(x.size) < 0.3] = 0.0
    ref = coo.to_dense() @ x
    data = build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(s_vvec, 5, 2))
    np.testing.assert_allclose(CSCVZMatrix(data).spmv(x), ref, rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(CSCVMMatrix(data).spmv(x), ref, rtol=1e-10, atol=1e-10)
