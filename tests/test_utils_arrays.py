"""Tests for repro.utils.arrays."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.arrays import (
    ALIGNMENT,
    aligned_zeros,
    as_contiguous,
    bincount_lengths,
    check_1d,
    ensure_dtype,
    is_aligned,
)


class TestAlignedZeros:
    def test_alignment_respected(self):
        for _ in range(8):  # allocation addresses vary; try several
            a = aligned_zeros(1001, np.float32)
            assert a.ctypes.data % ALIGNMENT == 0

    def test_zero_initialised(self):
        a = aligned_zeros((7, 3))
        assert np.all(a == 0.0)

    def test_shape_and_dtype(self):
        a = aligned_zeros((4, 5), np.float32)
        assert a.shape == (4, 5)
        assert a.dtype == np.float32

    def test_scalar_shape(self):
        assert aligned_zeros(10).shape == (10,)

    def test_custom_alignment(self):
        a = aligned_zeros(3, align=128)
        assert a.ctypes.data % 128 == 0

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValidationError):
            aligned_zeros(3, align=48)

    def test_writable(self):
        a = aligned_zeros(5)
        a[2] = 7.0
        assert a[2] == 7.0

    def test_empty(self):
        assert aligned_zeros(0).size == 0


class TestIsAligned:
    def test_aligned_buffer(self):
        assert is_aligned(aligned_zeros(16))

    def test_unaligned_view(self):
        base = aligned_zeros(17, np.float32)
        assert not is_aligned(base[1:])


class TestEnsureDtype:
    def test_casts(self):
        out = ensure_dtype([1, 2, 3], np.float32)
        assert out.dtype == np.float32

    def test_contiguous(self):
        arr = np.arange(10, dtype=np.float64)[::2]
        out = ensure_dtype(arr, np.float64)
        assert out.flags.c_contiguous

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            ensure_dtype(np.array(["a", "b"]), np.float64)


class TestCheck1D:
    def test_accepts_vector(self):
        v = np.arange(4)
        assert check_1d(v) is v

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError):
            check_1d(np.zeros((2, 2)))

    def test_size_check(self):
        with pytest.raises(ValidationError):
            check_1d(np.zeros(3), size=4)


class TestBincountLengths:
    def test_basic(self):
        out = bincount_lengths(np.array([0, 1, 1, 3]), 5)
        assert out.tolist() == [1, 2, 0, 1, 0]

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            bincount_lengths(np.array([5]), 5)

    def test_as_contiguous_roundtrip(self):
        a = np.arange(6).reshape(2, 3).T
        c = as_contiguous(a)
        assert c.flags.c_contiguous and np.array_equal(a, c)
