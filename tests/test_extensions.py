"""Tests for the extension systems: fan-beam geometry, attenuated (SPECT)
operator, BTB ablation mode, CSCV serialization, OS-SART, host calibration
and the CLI."""

import numpy as np
import pytest

from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.io import load_cscv, save_cscv
from repro.core.params import CSCVParams
from repro.errors import FormatError, GeometryError
from repro.geometry.attenuated import (
    attenuated_strip_matrix,
    attenuation_depths,
    attenuation_factor_range,
)
from repro.geometry.fan_beam import FanBeamGeometry
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_fan import fan_strip_matrix, fan_strip_view
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture(scope="module")
def fan_geom():
    return FanBeamGeometry.for_image(24, num_views=48)


@pytest.fixture(scope="module")
def fan_problem(fan_geom):
    rows, cols, vals = fan_strip_matrix(fan_geom, dtype=np.float32)
    coo = COOMatrix.from_coo(fan_geom.shape, rows, cols, vals, dtype=np.float32)
    return coo, fan_geom


class TestFanBeamGeometry:
    def test_validation(self):
        with pytest.raises(GeometryError):
            FanBeamGeometry(image_size=16, num_bins=32, num_views=8,
                            delta_angle_deg=5.0, source_radius=5.0)

    def test_fan_angle_auto_sized(self, fan_geom):
        assert 0 < fan_geom.fan_angle_deg < 180

    def test_center_on_central_ray(self, fan_geom):
        # the rotation centre lies on the central ray at every view
        for v in (0, 7, 23):
            g = fan_geom.fan_coordinate(0.0, 0.0, v)
            assert abs(float(g)) < 1e-9

    def test_gamma_to_bin_center(self, fan_geom):
        assert float(fan_geom.gamma_to_bin(0.0)) == pytest.approx(fan_geom.num_bins / 2)

    def test_footprint_shrinks_with_distance(self, fan_geom):
        # pixel near the source subtends a larger angle than one far away
        sx, sy = fan_geom.source_position(0)
        near = fan_geom.pixel_footprint_halfangle(sx * 0.3, sy * 0.3, 0)
        far = fan_geom.pixel_footprint_halfangle(-sx * 0.3, -sy * 0.3, 0)
        assert float(near) > float(far)

    def test_describe(self, fan_geom):
        assert "fan-beam" in fan_geom.describe()["geometry"]


class TestFanProjector:
    def test_view_rows_in_view(self, fan_geom):
        rows, cols, vals = fan_strip_view(fan_geom, 5)
        assert np.all(rows // fan_geom.num_bins == 5)
        assert np.all(vals > 0)

    def test_density_similar_to_parallel(self, fan_problem):
        coo, geom = fan_problem
        density = coo.nnz / (geom.num_pixels * geom.num_views)
        assert 1.5 < density < 4.0

    def test_every_pixel_seen_every_view(self, fan_problem):
        coo, geom = fan_problem
        # the fan covers the whole image: every column has ~num_views hits
        per_col = coo.col_nnz()
        assert per_col.min() >= geom.num_views  # >= 1 bin per view


class TestFanBeamCSCV:
    @pytest.mark.parametrize("params", [CSCVParams(8, 8, 2), CSCVParams(16, 8, 1)])
    def test_cscv_correct_under_fan_beam(self, fan_problem, params, backend):
        coo, geom = fan_problem
        x = np.random.default_rng(3).random(coo.shape[1]).astype(np.float32)
        ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
        for cls in (CSCVZMatrix, CSCVMMatrix):
            fmt = cls.from_ct(coo, geom, params)
            rel = np.abs(fmt.spmv(x) - ref).max() / np.abs(ref).max()
            assert rel < 5e-6

    def test_fan_padding_reasonable(self, fan_problem):
        coo, geom = fan_problem
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 1))
        assert z.r_nnze < 2.0  # trajectories still piecewise parallel


class TestAttenuatedOperator:
    @pytest.fixture(scope="class")
    def geom(self):
        return ParallelBeamGeometry.for_image(16, num_views=24)

    def test_pattern_preserved(self, geom):
        r0, c0, _ = strip_area_matrix(geom)
        r1, c1, _ = attenuated_strip_matrix(geom, mu=0.05)
        assert np.array_equal(r0, r1) and np.array_equal(c0, c1)

    def test_zero_mu_is_identity(self, geom):
        _, _, v0 = strip_area_matrix(geom)
        _, _, v1 = attenuated_strip_matrix(geom, mu=0.0)
        np.testing.assert_allclose(v0, v1)

    def test_weights_decrease_with_mu(self, geom):
        _, _, v1 = attenuated_strip_matrix(geom, mu=0.02)
        _, _, v2 = attenuated_strip_matrix(geom, mu=0.2)
        assert v2.sum() < v1.sum()

    def test_depths_zero_outside_disk(self, geom):
        d = attenuation_depths(geom, radius=2.0)
        X, Y = geom.pixel_centers()
        outside = X**2 + Y**2 >= 4.0
        assert np.all(d[:, outside] == 0.0)

    def test_depth_bounded_by_diameter(self, geom):
        d = attenuation_depths(geom, radius=5.0)
        assert d.max() <= 10.0 + 1e-9

    def test_factor_range(self, geom):
        lo, hi = attenuation_factor_range(geom, mu=0.1)
        assert 0 < lo < 1 and hi == 1.0

    def test_cscv_on_spect_matrix(self, geom):
        rows, cols, vals = attenuated_strip_matrix(geom, mu=0.05, dtype=np.float32)
        coo = COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=np.float32)
        x = np.random.default_rng(1).random(coo.shape[1]).astype(np.float32)
        ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2))
        rel = np.abs(z.spmv(x) - ref).max() / np.abs(ref).max()
        assert rel < 5e-6

    def test_bad_args(self, geom):
        with pytest.raises(GeometryError):
            attenuated_strip_matrix(geom, mu=-1.0)
        with pytest.raises(GeometryError):
            attenuation_depths(geom, radius=0.0)


class TestBTBAblation:
    @pytest.fixture(scope="class")
    def problem(self):
        geom = ParallelBeamGeometry.for_image(32, num_views=64)
        rows, cols, vals = strip_area_matrix(geom)
        coo = COOMatrix.from_coo(geom.shape, rows, cols, vals)
        return coo, geom

    def test_btb_correct(self, problem):
        coo, geom = problem
        x = np.random.default_rng(2).random(coo.shape[1])
        ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
        z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 8, 2), reference_mode="btb")
        np.testing.assert_allclose(z.spmv(x), ref, rtol=1e-10, atol=1e-10)

    def test_btb_pads_more_than_ioblr(self, problem):
        # the Fig 4 story, end to end: view-major fills worse than IOBLR
        coo, geom = problem
        params = CSCVParams(8, 8, 2)
        kw = dict(dtype=np.float64)
        ioblr = build_cscv(coo.rows, coo.cols, coo.vals, geom, params, **kw)
        btb = build_cscv(coo.rows, coo.cols, coo.vals, geom, params,
                         reference_mode="btb", **kw)
        assert btb.r_nnze > 1.2 * ioblr.r_nnze

    def test_unknown_mode_rejected(self, problem):
        coo, geom = problem
        with pytest.raises(FormatError):
            build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(),
                       reference_mode="zigzag")


class TestSerialization:
    def test_roundtrip(self, tmp_path, fine_ct):
        coo, geom = fine_ct
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom,
                          CSCVParams(8, 16, 2), np.float32)
        f = tmp_path / "m.npz"
        save_cscv(f, data)
        loaded = load_cscv(f)
        assert loaded.shape == data.shape
        assert loaded.params == data.params
        x = np.random.default_rng(0).random(coo.shape[1]).astype(np.float32)
        np.testing.assert_array_equal(
            CSCVZMatrix(data).spmv(x), CSCVZMatrix(loaded).spmv(x)
        )
        np.testing.assert_array_equal(
            CSCVMMatrix(data).spmv(x), CSCVMMatrix(loaded).spmv(x)
        )

    def test_rejects_non_cscv_file(self, tmp_path):
        f = tmp_path / "x.npz"
        np.savez(f, a=np.zeros(3))
        with pytest.raises(FormatError):
            load_cscv(f)

    def test_rejects_bad_version(self, tmp_path, fine_ct):
        coo, geom = fine_ct
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, CSCVParams(4, 8, 1),
                          np.float32)
        f = tmp_path / "m.npz"
        save_cscv(f, data)
        with np.load(f) as z:
            arrays = {k: z[k] for k in z.files}
        arrays["_meta"] = arrays["_meta"].copy()
        arrays["_meta"][0] = 999
        np.savez(f, **arrays)
        with pytest.raises(FormatError):
            load_cscv(f)


class TestOSSART:
    def test_converges_and_beats_plain_sart_per_pass(self):
        from repro.geometry.phantom import disk_phantom
        from repro.recon.os_sart import os_sart_reconstruct

        geom = ParallelBeamGeometry.for_image(24, num_views=48)
        rows, cols, vals = strip_area_matrix(geom)
        coo = COOMatrix.from_coo(geom.shape, rows, cols, vals)
        csr = CSRMatrix.from_coo_matrix(coo)
        truth = disk_phantom(24, radius_frac=0.5).ravel()
        sino = csr.spmv(truth)
        x_os = os_sart_reconstruct(csr, geom, sino, num_subsets=8, iterations=3)
        x_plain = os_sart_reconstruct(csr, geom, sino, num_subsets=1, iterations=3)
        err_os = np.linalg.norm(x_os - truth)
        err_plain = np.linalg.norm(x_plain - truth)
        assert err_os < err_plain  # ordered subsets accelerate

    def test_subsets_partition_views(self):
        from repro.recon.os_sart import view_subsets

        geom = ParallelBeamGeometry.for_image(8, num_views=10)
        subs = view_subsets(geom, 3)
        allv = np.sort(np.concatenate(subs))
        assert np.array_equal(allv, np.arange(10))

    def test_invalid_subsets(self):
        from repro.errors import ValidationError
        from repro.recon.os_sart import view_subsets

        geom = ParallelBeamGeometry.for_image(8, num_views=10)
        with pytest.raises(ValidationError):
            view_subsets(geom, 0)


class TestCalibrate:
    def test_calibrated_machine_sane(self):
        from repro.bench.calibrate import calibrate_host

        m = calibrate_host(stream_mb=32)
        assert m.core_bw_gbs > 0.5
        assert 0.3 < m.ghz < 10.0

    def test_validation_report_renders(self):
        from repro.bench.calibrate import calibrate_host, validation_report

        out = validation_report(calibrate_host(stream_mb=32))
        assert "cscv-z" in out


class TestCLI:
    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "formats" in out and "cscv-z" in out

    def test_spmv(self, capsys):
        from repro.cli import main

        assert main(["spmv", "--dataset", "clinical-small", "--iterations", "2",
                     "--formats", "csr,cscv-z"]) == 0
        assert "cscv-z" in capsys.readouterr().out

    def test_convert_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "m.npz"
        assert main(["convert", str(out), "--dataset", "clinical-small"]) == 0
        assert out.exists()
        loaded = load_cscv(out)
        assert loaded.nnz > 0

    def test_experiment(self, capsys):
        from repro.cli import main

        assert main(["experiment", "table1"]) == 0
        assert "S_VVec" in capsys.readouterr().out

    def test_reconstruct_unknown_solver(self, capsys):
        from repro.cli import main

        assert main(["reconstruct", "--solver", "magic", "--size", "16"]) == 2
