"""Shared fixtures for the test suite.

Small CT matrices built once per session; both compute backends are
exercised through the ``backend`` fixture (C kernels when a compiler is
present, NumPy always).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.api import build_ct_matrix
from repro.geometry.parallel_beam import ParallelBeamGeometry


@pytest.fixture(scope="session", autouse=True)
def _hermetic_operator_cache(tmp_path_factory):
    """Point the operator cache at a throwaway root for the whole session.

    Patches :func:`repro.config.operator_cache_dir` rather than
    ``REPRO_CACHE_DIR`` so the compiled-kernel cache (and its warm .so
    files) stays untouched.
    """
    root = str(tmp_path_factory.mktemp("operator-cache"))
    prev = config.operator_cache_dir
    config.operator_cache_dir = lambda: root
    yield root
    config.operator_cache_dir = prev


@pytest.fixture(scope="session")
def small_ct():
    """32x32 strip-model CT matrix + geometry (float64)."""
    return build_ct_matrix(32)


@pytest.fixture(scope="session")
def small_ct_f32():
    """32x32 strip-model CT matrix + geometry (float32)."""
    return build_ct_matrix(32, dtype=np.float32)


@pytest.fixture(scope="session")
def fine_ct():
    """48x48 matrix with fine angular sampling (realistic CSCV padding)."""
    geom = ParallelBeamGeometry.for_image(48, num_views=96)
    return build_ct_matrix(48, geom=geom, dtype=np.float32)


@pytest.fixture(params=["auto", "numpy"])
def backend(request):
    """Run a test under both the compiled and the NumPy backend."""
    prev = config.runtime.backend
    config.runtime.backend = request.param
    yield request.param
    config.runtime.backend = prev


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
